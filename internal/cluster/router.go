package cluster

// router.go fronts the replicated tier. The Router holds the live
// membership (fed from the registry's lease table), proxies the
// /v1/sessions API to the node that owns each session, and — when a
// member's lease expires — drives the failover: it asks the dead
// node's follower to promote its replica, then routes the dead node's
// session IDs to the adopter.
//
// Session placement needs no lookup table: creates go to a
// rendezvous-chosen node, and every session ID carries its minting
// node as a prefix ("n2-s7"), so any router instance can route any ID
// from the membership list alone. Composition (/v1/compose) goes
// through the transport-agnostic Planner — in-process on the router or
// remoted to a replica.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/registry"
	"qoschain/internal/trace"
)

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Planner composes /v1/compose requests; nil remotes each request
	// to a live node round-robin.
	Planner Planner
	// Client proxies requests (nil uses http.DefaultClient).
	Client *http.Client
	// Counters receives cluster.* metrics (nil is a no-op sink).
	Counters *metrics.Counters
	// Metrics, when set, contributes the router's own registry to the
	// GET /cluster/metrics federation under node="router".
	Metrics *metrics.Registry
	// Tracer, when set, contributes the router's own retained traces to
	// GET /debug/traces/cluster stitching.
	Tracer *trace.Tracer
}

// Promotion records one failover the router drove.
type Promotion struct {
	// Dead is the node whose lease expired.
	Dead string `json:"dead"`
	// Adopter is the follower that took the sessions over.
	Adopter string `json:"adopter"`
	// Report is the adopter's promotion report (nil when Err is set).
	Report *PromoteReport `json:"report,omitempty"`
	// TookMs is the router-observed recovery latency: expiry detection
	// to promotion acknowledged.
	TookMs float64 `json:"tookMs"`
	// Err records a failed promotion (the follower died too, or the
	// promote call failed); the router retries on the next update.
	Err string `json:"err,omitempty"`
}

// Router proxies the session API across the cluster and fails sessions
// over when members die.
type Router struct {
	planner    Planner
	client     *http.Client
	counters   *metrics.Counters
	metricsReg *metrics.Registry
	tracer     *trace.Tracer

	mu    sync.Mutex
	live  map[string]registry.Member // current members, by ID
	known map[string]registry.Member // every member ever seen (address/host book)
	dead  map[string]string          // dead node -> adopter (may chain)
	rr    int                        // round-robin cursor for creates/composes
}

// NewRouter builds an empty router; call UpdateMembers to seed it.
func NewRouter(cfg RouterConfig) *Router {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Router{
		planner:    cfg.Planner,
		client:     client,
		counters:   cfg.Counters,
		metricsReg: cfg.Metrics,
		tracer:     cfg.Tracer,
		live:       map[string]registry.Member{},
		known:      map[string]registry.Member{},
		dead:       map[string]string{},
	}
}

// UpdateMembers ingests the latest live membership. Members missing
// from consecutive updates are dead: for each, the router promotes the
// follower the shard map had already assigned, so the dead node's
// sessions survive on their replica. Returns the promotions attempted
// this round (empty when membership is stable).
func (r *Router) UpdateMembers(ctx context.Context, live []registry.Member) []Promotion {
	r.mu.Lock()
	newLive := make(map[string]registry.Member, len(live))
	for _, m := range live {
		newLive[m.ID] = m
		r.known[m.ID] = m
	}
	// Cohort for follower election: the membership as the shipper saw
	// it (previous live set) — FollowerOf excludes the dead node
	// itself, so the router elects exactly the node that was already
	// holding the replica.
	cohort := make([]registry.Member, 0, len(r.live))
	for _, m := range r.live {
		cohort = append(cohort, m)
	}
	var deadIDs []string
	for id := range r.live {
		if _, ok := newLive[id]; !ok {
			if _, already := r.dead[id]; !already {
				deadIDs = append(deadIDs, id)
			}
		}
	}
	sort.Strings(deadIDs)
	r.live = newLive
	r.mu.Unlock()

	var out []Promotion
	for _, id := range deadIDs {
		p := r.promoteDead(ctx, cohort, id)
		out = append(out, p)
	}
	return out
}

// promoteDead elects the dead node's follower and asks it to adopt.
func (r *Router) promoteDead(ctx context.Context, cohort []registry.Member, dead string) Promotion {
	start := time.Now()
	p := Promotion{Dead: dead}
	follower, ok := FollowerOf(cohort, dead)
	if !ok {
		p.Err = "no follower in cohort"
		return p
	}
	r.mu.Lock()
	adopter, alive := r.live[follower.ID]
	failHost := r.known[dead].Host
	r.mu.Unlock()
	if !alive {
		p.Err = fmt.Sprintf("follower %s is not alive", follower.ID)
		return p
	}
	p.Adopter = adopter.ID
	body, _ := json.Marshal(promoteRequest{Source: dead, FailHost: failHost})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+adopter.Addr+PromotePath, strings.NewReader(string(body)))
	if err != nil {
		p.Err = err.Error()
		return p
	}
	req.Header.Set("Content-Type", "application/json")
	trace.Inject(ctx, req.Header, "router promote")
	resp, err := r.client.Do(req)
	if err != nil {
		p.Err = err.Error()
		return p
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		p.Err = fmt.Sprintf("promote on %s: status %d: %s", adopter.ID, resp.StatusCode, strings.TrimSpace(string(msg)))
		return p
	}
	var rep PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		p.Err = err.Error()
		return p
	}
	p.Report = &rep
	p.TookMs = float64(time.Since(start)) / float64(time.Millisecond)
	r.counters.Observe(metrics.SampleClusterRecoveryMs, p.TookMs)
	r.mu.Lock()
	r.dead[dead] = adopter.ID
	r.mu.Unlock()
	return p
}

// Members returns the current live membership, sorted by ID.
func (r *Router) Members() []registry.Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sortedLiveLocked()
}

func (r *Router) sortedLiveLocked() []registry.Member {
	out := make([]registry.Member, 0, len(r.live))
	for _, m := range r.live {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ownerOf maps a session ID to the member currently serving it: the
// longest "<node>-" prefix names the minting node, and the dead map is
// chased so adopted sessions route to their adopter.
func (r *Router) ownerOf(id string) (registry.Member, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner := ""
	for nodeID := range r.known {
		if strings.HasPrefix(id, nodeID+"-") && len(nodeID) > len(owner) {
			owner = nodeID
		}
	}
	if owner == "" {
		return registry.Member{}, fmt.Errorf("no cluster node owns session %q", id)
	}
	// Chase adoption chains (the adopter may itself have died later).
	for hops := 0; hops < len(r.dead)+1; hops++ {
		next, isDead := r.dead[owner]
		if !isDead {
			break
		}
		owner = next
	}
	m, ok := r.live[owner]
	if !ok {
		return registry.Member{}, fmt.Errorf("node %s owning session %q is down and not failed over", owner, id)
	}
	return m, nil
}

// nextLive picks a live member round-robin (for creates and remote
// composition).
func (r *Router) nextLive() (registry.Member, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := r.sortedLiveLocked()
	if len(ms) == 0 {
		return registry.Member{}, fmt.Errorf("no live cluster members")
	}
	m := ms[r.rr%len(ms)]
	r.rr++
	return m, nil
}

// ServeHTTP routes the session and composition API across the cluster.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	switch {
	case path == "/healthz":
		r.handleHealth(w)
	case path == "/cluster/metrics" && req.Method == http.MethodGet:
		r.handleClusterMetrics(w, req)
	case path == "/debug/traces/cluster" && req.Method == http.MethodGet:
		r.handleClusterTraces(w, req)
	case path == "/v1/compose" && req.Method == http.MethodPost:
		r.handleCompose(w, req)
	case path == "/v1/sessions" && req.Method == http.MethodPost:
		m, err := r.nextLive()
		if err != nil {
			routerError(w, http.StatusServiceUnavailable, err)
			return
		}
		r.proxy(w, req, m)
	case path == "/v1/sessions" && req.Method == http.MethodGet:
		r.handleList(w, req)
	case strings.HasPrefix(path, "/v1/sessions/"):
		id := strings.TrimPrefix(path, "/v1/sessions/")
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id = id[:i]
		}
		m, err := r.ownerOf(id)
		if err != nil {
			routerError(w, http.StatusNotFound, err)
			return
		}
		r.proxy(w, req, m)
	default:
		routerError(w, http.StatusNotFound, fmt.Errorf("no cluster route for %s", path))
	}
}

func routerError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleHealth reports the router's view of the cluster.
func (r *Router) handleHealth(w http.ResponseWriter) {
	r.mu.Lock()
	dead := make(map[string]string, len(r.dead))
	for k, v := range r.dead {
		dead[k] = v
	}
	n := len(r.live)
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":  "ok",
		"role":    "router",
		"members": n,
		"dead":    dead,
	})
}

// handleCompose plans through the Planner abstraction: in-process when
// the router was built with one, otherwise remoted to a live node.
func (r *Router) handleCompose(w http.ResponseWriter, req *http.Request) {
	defer req.Body.Close()
	set, err := profile.DecodeSet(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		routerError(w, http.StatusBadRequest, err)
		return
	}
	planner := r.planner
	if planner == nil {
		m, err := r.nextLive()
		if err != nil {
			routerError(w, http.StatusServiceUnavailable, err)
			return
		}
		planner = &RemotePlanner{Base: m.Addr, Client: r.client}
	}
	plan, err := planner.Plan(req.Context(), set, req.URL.Query().Get("contact"))
	if err != nil {
		routerError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// handleList fans a list out to every live member and merges the
// "sessions" arrays.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	merged := []json.RawMessage{}
	for _, m := range r.Members() {
		u := "http://" + m.Addr + "/v1/sessions"
		lr, err := http.NewRequestWithContext(req.Context(), http.MethodGet, u, nil)
		if err != nil {
			continue
		}
		trace.Inject(req.Context(), lr.Header, "router /v1/sessions")
		resp, err := r.client.Do(lr)
		if err != nil {
			continue // a dying member drops out of the merged view
		}
		var doc struct {
			Sessions []json.RawMessage `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			continue
		}
		merged = append(merged, doc.Sessions...)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"sessions": merged})
}

// proxy forwards the request verbatim to a member and copies the
// response back.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request, m registry.Member) {
	u := "http://" + m.Addr + req.URL.Path
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, u, req.Body)
	if err != nil {
		routerError(w, http.StatusInternalServerError, err)
		return
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	// Propagate the caller's trace so the member adopts its ID instead
	// of minting a new one — this must survive re-routing: when ownerOf
	// chased the dead map and the request lands on a promoted follower,
	// the retry still carries the original request's trace context.
	trace.Inject(req.Context(), out.Header, "router "+req.URL.Path)
	if out.Header.Get(trace.HeaderTraceID) == "" {
		// Router running without its own observability layer: forward
		// the caller's raw headers verbatim.
		if id := req.Header.Get(trace.HeaderTraceID); id != "" {
			out.Header.Set(trace.HeaderTraceID, id)
			if p := req.Header.Get(trace.HeaderSpanParent); p != "" {
				out.Header.Set(trace.HeaderSpanParent, p)
			}
		}
	}
	resp, err := r.client.Do(out)
	if err != nil {
		routerError(w, http.StatusBadGateway, fmt.Errorf("proxy to %s: %w", m.ID, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client went away
}
