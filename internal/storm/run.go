package storm

// run.go is the storm execution engine: given the pending changed-link
// set, it computes the affected classes, scores and orders them by how
// far below their floor the event pushed them, and re-plans each class
// exactly once — Select per class, atomic hold swap per member.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
)

// Class plan outcomes.
const (
	// OutcomeUnchanged: the repaired graph still prefers the class's
	// current chain; members keep their holds untouched.
	OutcomeUnchanged = "unchanged"
	// OutcomeReplanned: a fresh at-or-above-floor chain was adopted and
	// fanned out.
	OutcomeReplanned = "replanned"
	// OutcomeDegraded: only a below-floor chain exists; it was adopted
	// (graceful degradation) and fanned out.
	OutcomeDegraded = "degraded"
	// OutcomeNoChain: nothing composes at all; members keep their old
	// holds and the class is marked degraded.
	OutcomeNoChain = "no-chain"
)

// ClassOutcome is one class's storm result.
type ClassOutcome struct {
	Key          string  `json:"key"`
	Members      int     `json:"members"`
	Gap          float64 `json:"gap"`
	Outcome      string  `json:"outcome"`
	Chain        string  `json:"chain,omitempty"`
	Satisfaction float64 `json:"satisfaction"`
	SwapFailed   int     `json:"swapFailed,omitempty"`
}

// Report summarises one storm.
type Report struct {
	Storm            int            `json:"storm"`
	ChangedLinks     int            `json:"changedLinks"`
	AffectedClasses  int            `json:"affectedClasses"`
	AffectedSessions int            `json:"affectedSessions"`
	SelectCalls      int            `json:"selectCalls"`
	SelectPerSession float64        `json:"selectPerSession"`
	Replanned        int            `json:"replanned"`
	Unchanged        int            `json:"unchangedClasses"`
	DegradedSessions int            `json:"degradedSessions"`
	SwapFailed       int            `json:"swapFailed"`
	NaiveChecks      int            `json:"naiveChecks,omitempty"`
	Mismatches       int            `json:"mismatches,omitempty"`
	RecoveryMs       float64        `json:"recoveryMs"`
	Resumed          bool           `json:"resumed,omitempty"`
	Classes          []ClassOutcome `json:"classes,omitempty"`
}

// planItem is one affected class queued for re-planning.
type planItem struct {
	cls *Class
	gap float64
}

// ErrStormActive rejects overlapping Storm calls, and any Storm while a
// replayed begin-without-end is still waiting on ResumeOpenStorm —
// starting a fresh storm there would orphan the open storm's remainder.
var ErrStormActive = errors.New("storm: a storm is already running")

// ErrHalted reports that Config.HaltAfterFanouts aborted the storm —
// the deterministic stand-in for a process death mid-fan-out.
var ErrHalted = errors.New("storm: halted mid-storm by HaltAfterFanouts")

// Storm absorbs the pending changed-link set and re-plans every
// affected class — once per class, not once per session. Affected means
// the class's chain crosses a changed link, the class was already
// degraded (a recovery chance), or it has no chain at all. Classes
// re-plan in priority order: furthest below their QoS floor first.
// Returns the report; a nil report with nil error means nothing was
// pending.
func (c *Controller) Storm() (*Report, error) {
	start := now()
	c.mu.Lock()
	if c.active || c.openStorm != nil {
		c.mu.Unlock()
		return nil, ErrStormActive
	}
	changed := make(map[string][]overlay.LinkRef)
	totalLinks := 0
	for name, r := range c.regions {
		if len(r.pending) > 0 {
			changed[name] = sortLinks(r.pending)
			totalLinks += len(r.pending)
			r.pending = make(map[overlay.LinkRef]bool)
		}
	}
	if totalLinks == 0 {
		c.mu.Unlock()
		return nil, nil
	}
	c.stormSeq++
	c.active = true
	c.fanouts = 0
	seq := c.stormSeq

	items := c.scoreLocked(c.affectedLocked(changed))
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = it.cls.key
	}
	if err := c.journalLocked(kindStormBegin, beginRecord{Storm: seq, Links: changed, Classes: keys}); err != nil {
		c.active = false
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	c.flights.begin(seq, totalLinks, len(items), false)

	rep, err := c.execute(seq, totalLinks, items, false)
	if err != nil {
		return nil, err
	}
	rep.RecoveryMs = float64(now().Sub(start).Microseconds()) / 1000.0
	c.mu.Lock()
	c.lastReport = rep
	c.mu.Unlock()
	c.cfg.Counters.Observe(metrics.SampleStormRecoveryMs, rep.RecoveryMs)
	return rep, nil
}

// execute runs the plan phase over an already-ordered item list and
// closes the storm out. Shared by Storm and crash-resume.
func (c *Controller) execute(seq, totalLinks int, items []planItem, resumed bool) (*Report, error) {
	rep := &Report{Storm: seq, ChangedLinks: totalLinks, AffectedClasses: len(items), Resumed: resumed}
	for _, it := range items {
		rep.AffectedSessions += len(it.cls.members)
	}

	var (
		repMu    sync.Mutex
		firstErr error
	)
	queues := c.partition(items)
	var wg sync.WaitGroup
	for _, q := range queues {
		wg.Add(1)
		go func(q []planItem) {
			defer wg.Done()
			for _, it := range q {
				repMu.Lock()
				dead := firstErr != nil
				repMu.Unlock()
				if dead {
					return
				}
				out, err := c.planOne(seq, it)
				repMu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if out != nil {
					rep.Classes = append(rep.Classes, *out)
					rep.SelectCalls++
					rep.SwapFailed += out.SwapFailed
					switch out.Outcome {
					case OutcomeUnchanged:
						rep.Unchanged++
					case OutcomeReplanned:
						rep.Replanned += out.Members - out.SwapFailed
					case OutcomeDegraded:
						rep.Replanned += out.Members - out.SwapFailed
					}
				}
				repMu.Unlock()
			}
		}(q)
	}
	wg.Wait()

	c.mu.Lock()
	c.active = false
	if firstErr != nil {
		c.mu.Unlock()
		return nil, firstErr
	}
	// Workers may interleave; re-impose the priority order on the
	// report so it reads deterministically.
	ordered := make([]ClassOutcome, 0, len(rep.Classes))
	for _, it := range items {
		for _, out := range rep.Classes {
			if out.Key == it.cls.key {
				ordered = append(ordered, out)
				break
			}
		}
	}
	rep.Classes = ordered
	for _, cls := range c.classes {
		for _, s := range cls.members {
			if s.degraded {
				rep.DegradedSessions++
			}
		}
	}
	if rep.AffectedSessions > 0 {
		rep.SelectPerSession = float64(rep.SelectCalls) / float64(rep.AffectedSessions)
	}
	rep.NaiveChecks, rep.Mismatches = c.naiveChecks, c.naiveMismatches
	c.naiveChecks, c.naiveMismatches = 0, 0
	err := c.journalLocked(kindStormEnd, endRecord{Storm: seq})
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c.flights.end(seq, false)
	if !c.replaying {
		c.cfg.Counters.Inc(metrics.CounterStormEvents)
		c.cfg.Counters.Add(metrics.CounterStormClasses, int64(rep.AffectedClasses))
	}
	return rep, nil
}

// affectedLocked selects the classes a changed-link set touches.
func (c *Controller) affectedLocked(changed map[string][]overlay.LinkRef) []*Class {
	sets := make(map[string]map[overlay.LinkRef]bool, len(changed))
	for name, links := range changed {
		set := make(map[overlay.LinkRef]bool, len(links))
		for _, l := range links {
			set[l] = true
		}
		sets[name] = set
	}
	var out []*Class
	for _, key := range c.order {
		cls := c.classes[key]
		set, ok := sets[cls.spec.Region]
		if !ok {
			continue
		}
		if cls.degraded || c.chainCrosses(cls, set) {
			out = append(out, cls)
		}
	}
	return out
}

// chainCrosses reports whether the class chain rides any link in the
// set. Chain-less classes always count as crossing — they have nothing
// to keep.
func (c *Controller) chainCrosses(cls *Class, set map[overlay.LinkRef]bool) bool {
	if cls.current == nil || !cls.current.Found {
		return true
	}
	hosts := c.chainHosts(cls)
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] == hosts[i] {
			continue
		}
		if set[overlay.LinkRef{From: hosts[i-1], To: hosts[i]}] {
			return true
		}
	}
	return false
}

// scoreLocked repairs each affected class's graph against the post-event
// network and scores its current chain, producing the priority order:
// descending gap below the floor (a broken chain scores below
// everything), ties broken by key for determinism.
func (c *Controller) scoreLocked(affected []*Class) []planItem {
	items := make([]planItem, 0, len(affected))
	for _, cls := range affected {
		postSat := -1.0 // broken or chain-less: ranks hardest-hit
		if g, err := c.repairLocked(cls); err == nil && cls.current != nil && cls.current.Found {
			if edges, ok := pathEdges(g, cls.current); ok {
				if _, sat, _, ok := core.EvalPath(g, cls.selcfg, edges); ok {
					postSat = sat
				}
			}
		}
		items = append(items, planItem{cls: cls, gap: cls.spec.Floor - postSat})
	}
	sortItems(items)
	return items
}

func sortItems(items []planItem) {
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].gap != items[j].gap {
			return items[i].gap > items[j].gap
		}
		return items[i].cls.key < items[j].cls.key
	})
}

// repairLocked incrementally repairs the class graph: only links
// dirtied since the class's last annotation generation are re-queried
// (graph.Cache.BuildRepair). Called with c.mu held.
func (c *Controller) repairLocked(cls *Class) (*graph.Graph, error) {
	r := c.regions[cls.spec.Region]
	gen := r.Net.Generation()
	var diff []overlay.LinkRef
	for l, at := range r.dirty {
		if at > cls.repairGen {
			diff = append(diff, l)
		}
	}
	g, _, err := c.cache.BuildRepairEx(cls.in, diff)
	if err != nil {
		return nil, err
	}
	cls.repairGen = gen
	return g, nil
}

// pathEdges resolves a planned chain back to the graph's edge objects
// (the same walk session.currentAchievable does). ok is false when an
// edge no longer exists.
func pathEdges(g *graph.Graph, res *core.Result) ([]*graph.Edge, bool) {
	edges := make([]*graph.Edge, 0, len(res.Formats))
	at := graph.SenderID
	for i, to := range res.Path[1:] {
		var found *graph.Edge
		for _, e := range g.Out(at) {
			if e.To == to && e.Format == res.Formats[i] {
				found = e
				break
			}
		}
		if found == nil {
			return nil, false
		}
		edges = append(edges, found)
		at = to
	}
	return edges, true
}

// partition splits the ordered items across workers with cache-entry
// affinity: classes that share a graph cache entry (same region,
// content and device — the cache fingerprint ignores user preferences
// and floor) always land on the same worker, so no two goroutines ever
// repair the same cached graph concurrently. With Workers=1 (the
// default) the single queue preserves the priority order exactly —
// that is also the deterministic mode.
func (c *Controller) partition(items []planItem) [][]planItem {
	workers := c.cfg.Workers
	if workers <= 1 || len(items) <= 1 {
		if len(items) == 0 {
			return nil
		}
		return [][]planItem{items}
	}
	queues := make([][]planItem, workers)
	slot := make(map[string]int)
	next := 0
	for _, it := range items {
		gk := it.cls.spec.Region + "|" + it.cls.spec.Content.ID + "|" + it.cls.spec.Device.ID
		w, ok := slot[gk]
		if !ok {
			w = next % workers
			slot[gk] = w
			next++
		}
		queues[w] = append(queues[w], it)
	}
	return queues
}

// planOne re-plans one class through the admission lane: repair the
// class graph against everything dirtied since its last annotation
// (including earlier classes' hold swaps in this same storm), run
// Select once, fan the result out to every member with an atomic hold
// swap, and journal the fan-out.
func (c *Controller) planOne(seq int, it planItem) (*ClassOutcome, error) {
	cls := it.cls
	planStart := now()
	if !c.replaying {
		c.cfg.Counters.Observe(metrics.SampleStormQueueDepth, float64(c.lane.Stats().QueueLen))
	}
	release, err := c.lane.Acquire(context.Background())
	if err != nil {
		return nil, fmt.Errorf("storm: admission lane: %w", err)
	}
	defer release()

	// Annotate the class graph as if the class were absent: its own
	// members' holds are what the re-plan will replace, so they must
	// not count against the availability the planner sees. The holds
	// are released only around the repair and restored exactly — the
	// graph keeps the freed-capacity snapshot, the overlay does not.
	c.mu.Lock()
	saved := c.releaseMembersLocked(cls)
	g, err := c.repairLocked(cls)
	c.restoreMembersLocked(cls, saved)
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("storm: class %s: %w", cls.key, err)
	}

	res, selErr := core.Select(g, cls.selcfg)
	if !c.replaying {
		c.cfg.Counters.Inc(metrics.CounterStormSelectCalls)
	}
	degraded := false
	switch {
	case selErr == nil:
	case errors.Is(selErr, core.ErrBelowFloor) && res != nil && res.Found:
		degraded = true
	default:
		res = nil // nothing composes; keep the old chain
	}

	if c.cfg.Verify && res != nil {
		c.verifyClass(g, cls, res)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.applyPlanLocked(cls, res, degraded)
	out.Gap = it.gap
	rec := classRecord{
		Storm: seq, Key: cls.key, Outcome: out.Outcome,
		Degraded: cls.degraded, Kbps: cls.kbps,
	}
	if res != nil {
		rec.Found = res.Found
		rec.Path = res.Path
		rec.Formats = res.Formats
		rec.Params = res.Params
		rec.Satisfaction = res.Satisfaction
		rec.Cost = res.Cost
	}
	if err := c.journalLocked(kindStormClass, rec); err != nil {
		return nil, err
	}
	c.flights.class(seq, cls.key, out.Outcome, out.Satisfaction, ms(now().Sub(planStart)), false)
	c.fanouts++
	if c.cfg.HaltAfterFanouts > 0 && c.fanouts >= c.cfg.HaltAfterFanouts && !c.replaying {
		// The fan-out above is journaled; dying here leaves begin + the
		// completed class records and no end — the mid-storm crash state.
		return nil, ErrHalted
	}
	return out, nil
}

// ReplanClass runs a single-class storm outside a fault event — the
// embedded mode's manual re-evaluation path. The class re-plans against
// its repaired graph and fans out exactly like a storm of one, sharing
// the journal format so a crash mid-replan resumes identically.
func (c *Controller) ReplanClass(key string) (*Report, error) {
	start := now()
	c.mu.Lock()
	if c.active || c.openStorm != nil {
		c.mu.Unlock()
		return nil, ErrStormActive
	}
	cls, ok := c.classes[key]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("storm: unknown class %s", key)
	}
	c.stormSeq++
	c.active = true
	c.fanouts = 0
	seq := c.stormSeq
	items := c.scoreLocked([]*Class{cls})
	if err := c.journalLocked(kindStormBegin, beginRecord{Storm: seq, Classes: []string{key}}); err != nil {
		c.active = false
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	c.flights.begin(seq, 0, 1, false)

	rep, err := c.execute(seq, 0, items, false)
	if err != nil {
		return nil, err
	}
	rep.RecoveryMs = float64(now().Sub(start).Microseconds()) / 1000.0
	c.mu.Lock()
	c.lastReport = rep
	c.mu.Unlock()
	return rep, nil
}

// releaseMembersLocked lifts every member's hold off the overlay,
// returning the holds for exact restoration.
func (c *Controller) releaseMembersLocked(cls *Class) [][]overlay.Reservation {
	r := c.regions[cls.spec.Region]
	saved := make([][]overlay.Reservation, len(cls.members))
	for i, s := range cls.members {
		if len(s.held) > 0 {
			r.Net.ReleaseChain(s.held)
			saved[i] = s.held
		}
	}
	return saved
}

// restoreMembersLocked re-reserves the holds releaseMembersLocked
// lifted. Restoration can only fail when the event took a held link
// down entirely; such a member loses its hold (it was dead bandwidth)
// and is marked degraded — the accounting stays exact either way.
func (c *Controller) restoreMembersLocked(cls *Class, saved [][]overlay.Reservation) {
	r := c.regions[cls.spec.Region]
	for i, hold := range saved {
		if len(hold) == 0 {
			continue
		}
		if err := r.Net.ReserveChain(hold); err != nil {
			cls.members[i].held = nil
			cls.members[i].degraded = true
		}
	}
}

// verifyClass is the naive-equivalence harness check: Select is re-run
// for every member against the same repaired graph and must return the
// class chain byte-for-byte. Counted separately from storm.select_calls
// — these are the baseline being measured against, not controller work.
func (c *Controller) verifyClass(g *graph.Graph, cls *Class, res *core.Result) {
	want := core.PathString(res.Path)
	for range cls.members {
		naive, err := core.Select(g, cls.selcfg)
		ok := err == nil || (errors.Is(err, core.ErrBelowFloor) && naive != nil && naive.Found)
		match := ok && naive != nil && core.PathString(naive.Path) == want &&
			len(naive.Formats) == len(res.Formats)
		if match {
			for i := range naive.Formats {
				if naive.Formats[i] != res.Formats[i] {
					match = false
					break
				}
			}
		}
		c.mu.Lock()
		c.naiveChecks++
		if !match {
			c.naiveMismatches++
		}
		c.mu.Unlock()
	}
}

// applyPlanLocked installs a plan result on the class and fans it out
// to the members. It is the single mutation path shared by live storms
// and journal replay, which is what keeps a replayed fan-out
// byte-identical to the live one.
func (c *Controller) applyPlanLocked(cls *Class, res *core.Result, degraded bool) *ClassOutcome {
	// SLO accounting fires on every application — live or replayed — so
	// a replica's qos.* series matches the primary's (see qos.go).
	prev := make([]bool, len(cls.members))
	for i, s := range cls.members {
		prev[i] = s.degraded
	}
	defer c.qosApplyLocked(cls, prev)
	out := &ClassOutcome{Key: cls.key, Members: len(cls.members)}
	if res == nil || !res.Found {
		// Graceful degradation floor: nothing composes, members keep
		// their old holds — streaming over a degraded chain beats
		// streaming over nothing.
		cls.degraded = true
		for _, s := range cls.members {
			s.degraded = true
		}
		if !c.replaying {
			c.cfg.Counters.Add(metrics.CounterStormDegraded, int64(len(cls.members)))
		}
		out.Outcome = OutcomeNoChain
		out.Chain = cls.Chain()
		out.Satisfaction = cls.Satisfaction()
		return out
	}

	kbps := cls.planKbps(res)
	same := cls.current != nil && cls.current.Found &&
		core.PathString(cls.current.Path) == core.PathString(res.Path) &&
		cls.kbps == kbps
	cls.current = res
	cls.kbps = kbps
	cls.degraded = degraded
	out.Chain = cls.Chain()
	out.Satisfaction = res.Satisfaction
	if same {
		// The repaired graph still prefers the chain the members
		// already hold; their reservations are already exact.
		for _, s := range cls.members {
			s.degraded = degraded
		}
		out.Outcome = OutcomeUnchanged
		if degraded && !c.replaying {
			c.cfg.Counters.Add(metrics.CounterStormDegraded, int64(len(cls.members)))
		}
		return out
	}

	r := c.regions[cls.spec.Region]
	newHolds := c.chainReservations(cls)
	for _, s := range cls.members {
		hold := append([]overlay.Reservation(nil), newHolds...)
		if err := r.Net.SwapChain(s.held, hold); err != nil {
			// Atomicity: the swap released nothing and acquired
			// nothing; the member keeps its old chain, degraded.
			s.degraded = true
			out.SwapFailed++
			continue
		}
		c.markDirtyLocked(r, s.held)
		c.markDirtyLocked(r, hold)
		s.held = hold
		s.degraded = degraded
		s.swaps++
		if !c.replaying {
			c.cfg.Counters.Inc(metrics.CounterStormSessionsReplanned)
			if degraded {
				c.cfg.Counters.Inc(metrics.CounterStormDegraded)
			}
		}
	}
	if degraded {
		out.Outcome = OutcomeDegraded
	} else {
		out.Outcome = OutcomeReplanned
	}
	return out
}
