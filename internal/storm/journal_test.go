package storm_test

// Durability tests: journal replay round-trips the controller state
// byte-for-byte, a crash mid-storm resumes to the same final state a
// crash-free run reaches, and snapshots compact without changing
// anything observable.

import (
	"testing"

	"qoschain/internal/journal"
	"qoschain/internal/storm"
)

// buildDurable runs the canonical scenario against a durable controller
// rooted at dir: two classes with members, a backbone collapse, one
// storm. fp may arm journal crash sites; stormErr receives Storm's
// error. The controller is returned still open.
func buildDurable(t *testing.T, dir string, fp *journal.FailPoints) (*storm.Controller, storm.Region, error) {
	t.Helper()
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{StateDir: dir, FailPoints: fp}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, ideal := range []float64{30, 24} {
		cls, err := c.AddClass(classSpec("r1", ideal, 0.6))
		if err != nil {
			t.Fatalf("AddClass %.0f: %v", ideal, err)
		}
		if _, err := c.Attach(cls.Key(), 6); err != nil {
			t.Fatalf("Attach %.0f: %v", ideal, err)
		}
	}
	collapse(t, c, reg, 0.5)
	_, stormErr := c.Storm()
	return c, reg, stormErr
}

// reopen restores the journal at dir onto a fresh, pre-fault region —
// the same way a restarted process would come back up.
func reopen(t *testing.T, dir string) (*storm.Controller, storm.Region) {
	t.Helper()
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{StateDir: dir}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return c, reg
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, reg, err := buildDurable(t, dir, nil)
	if err != nil {
		t.Fatalf("Storm: %v", err)
	}
	want, err := c.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	wantReserved := reg.Net.TotalReservedKbps()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, reg2 := reopen(t, dir)
	defer c2.Close()
	rec := c2.Recovery()
	if rec == nil || rec.Records == 0 {
		t.Fatalf("Recovery() = %+v, want replayed records", rec)
	}
	if rec.Classes != 2 || rec.Sessions != 12 {
		t.Fatalf("recovered %d classes / %d sessions, want 2 / 12", rec.Classes, rec.Sessions)
	}
	got, err := c2.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint after replay: %v", err)
	}
	if got != want {
		t.Fatalf("replayed state differs from live state\nlive:     %s\nreplayed: %s", want, got)
	}
	if r := reg2.Net.TotalReservedKbps(); r != wantReserved {
		t.Fatalf("replayed overlay reserves %.1f kbps, live reserved %.1f", r, wantReserved)
	}
	if d := leak(c2, reg2); d != 0 {
		t.Fatalf("leak after replay: %.3f kbps", d)
	}
}

func TestCrashMidStormResumes(t *testing.T) {
	// Control: the same scenario with no crash.
	controlDir := t.TempDir()
	control, _, err := buildDurable(t, controlDir, nil)
	if err != nil {
		t.Fatalf("control Storm: %v", err)
	}
	want, err := control.Fingerprint()
	if err != nil {
		t.Fatalf("control Fingerprint: %v", err)
	}
	control.Close()

	// Crash run: kill the journal on its first storm-class append. The
	// setup writes 2 class + 2 attach + 1 netchange + 1 storm-begin
	// records, so the 7th append is the first class fan-out.
	for _, point := range []journal.FailPoint{journal.FPAppend, journal.FPTornAppend} {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			fp := journal.NewFailPoints()
			fp.Arm(point, 7)
			c, reg, stormErr := buildDurable(t, dir, fp)
			if stormErr == nil {
				t.Fatal("Storm survived an armed journal crash")
			}
			if !journal.IsCrash(stormErr) {
				t.Fatalf("Storm error = %v, want a journal crash", stormErr)
			}
			if d := leak(c, reg); d != 0 {
				t.Fatalf("leak at crash point: %.3f kbps", d)
			}
			c.Close()

			c2, reg2 := reopen(t, dir)
			defer c2.Close()
			rec := c2.Recovery()
			if rec == nil || !rec.ResumedStorm || rec.Resumed == nil {
				t.Fatalf("Recovery() = %+v, want a resumed storm", rec)
			}
			if !rec.Resumed.Resumed {
				t.Fatal("resumed report not marked Resumed")
			}
			got, err := c2.Fingerprint()
			if err != nil {
				t.Fatalf("Fingerprint after resume: %v", err)
			}
			if got != want {
				t.Fatalf("crash-resume state differs from crash-free run\ncontrol: %s\nresumed: %s", want, got)
			}
			if d := leak(c2, reg2); d != 0 {
				t.Fatalf("leak after resume: %.3f kbps", d)
			}
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := buildRegion("r1", 200000)
	c, err := storm.Open(storm.Config{StateDir: dir, SnapshotEvery: 4}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Enough commands to cross several snapshot boundaries.
	for i, ideal := range []float64{30, 28, 26, 24, 22, 20} {
		cls, err := c.AddClass(classSpec("r1", ideal, 0.55))
		if err != nil {
			t.Fatalf("AddClass %d: %v", i, err)
		}
		if _, err := c.Attach(cls.Key(), 3); err != nil {
			t.Fatalf("Attach %d: %v", i, err)
		}
	}
	collapse(t, c, reg, 0.5)
	if _, err := c.Storm(); err != nil {
		t.Fatalf("Storm: %v", err)
	}
	want, err := c.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	c.Close()

	reg2 := buildRegion("r1", 200000)
	c2, err := storm.Open(storm.Config{StateDir: dir, SnapshotEvery: 4}, []storm.Region{reg2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	rec := c2.Recovery()
	if rec == nil || !rec.FromSnapshot {
		t.Fatalf("Recovery() = %+v, want snapshot-based restart", rec)
	}
	got, err := c2.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint after snapshot restore: %v", err)
	}
	if got != want {
		t.Fatalf("snapshot restore differs\nlive:     %s\nrestored: %s", want, got)
	}
	if d := leak(c2, reg2); d != 0 {
		t.Fatalf("leak after snapshot restore: %.3f kbps", d)
	}
}
