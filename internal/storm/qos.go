package storm

// qos.go is the controller's QoS SLO tracking: per-member satisfaction
// telemetry derived from every plan application. Unlike the storm.*
// counters (live-only, guarded by !replaying), the qos.* hooks fire on
// BOTH the live path and journal replay: the registry is in-memory and
// dies with the process, so a restarted primary rebuilds its SLO state
// from the WAL, and a follower replaying shipped records reports the
// same qos.* series as the primary that journaled them. The hooks write
// only to Config.Counters (the daemon-level registry) — never to any
// state that feeds Fingerprint — so SLO telemetry cannot perturb the
// byte-identity the crash and failover tests compare.

import "qoschain/internal/metrics"

// qosState is the controller's SLO bookkeeping (guarded by c.mu).
type qosState struct {
	burn *metrics.BurnWindow
}

// observe pushes one member observation and returns the windowed burn
// rate (fraction of recent observations below floor).
func (q *qosState) observe(belowFloor bool) float64 {
	if q.burn == nil {
		q.burn = metrics.NewBurnWindow(0)
	}
	return q.burn.Observe(belowFloor)
}

// qosApplyLocked records the SLO effect of one class plan application:
// one satisfaction observation per member, below-floor second and burn
// accounting, and a floor-breach count for every member that
// transitioned healthy→degraded. prev is the members' degraded flags
// captured before the plan mutated them. Called with c.mu held.
func (c *Controller) qosApplyLocked(cls *Class, prev []bool) {
	cc := c.cfg.Counters
	if cc == nil {
		return
	}
	sat := cls.Satisfaction()
	burn := 0.0
	for i, s := range cls.members {
		cc.Observe(metrics.SampleQoSSatisfaction, sat)
		burn = c.qos.observe(s.degraded)
		if s.degraded {
			cc.Inc(metrics.CounterQoSBelowFloorSeconds)
		}
		if i < len(prev) && !prev[i] && s.degraded {
			cc.Inc(metrics.CounterQoSFloorBreaches)
		}
	}
	if len(cls.members) > 0 {
		cc.SetGauge(metrics.GaugeQoSBurnRate, burn)
	}
	c.qosPublishLocked()
}

// qosMemberLocked records one member's attach/detach-time SLO state.
func (c *Controller) qosMemberLocked(s *Session, satisfaction float64) {
	cc := c.cfg.Counters
	if cc == nil {
		return
	}
	cc.Observe(metrics.SampleQoSSatisfaction, satisfaction)
	burn := c.qos.observe(s.degraded)
	if s.degraded {
		cc.Inc(metrics.CounterQoSBelowFloorSeconds)
		cc.Inc(metrics.CounterQoSFloorBreaches)
	}
	cc.SetGauge(metrics.GaugeQoSBurnRate, burn)
	c.qosPublishLocked()
}

// qosPublishLocked re-derives the degraded-sessions gauge from the
// members' flags — the flags are the journaled truth, so the gauge is
// identical after live execution and after replay.
func (c *Controller) qosPublishLocked() {
	cc := c.cfg.Counters
	if cc == nil {
		return
	}
	degraded := 0
	for _, key := range c.order {
		for _, s := range c.classes[key].members {
			if s.degraded {
				degraded++
			}
		}
	}
	cc.SetGauge(metrics.GaugeQoSDegradedSessions, float64(degraded))
}
