package storm

// flight.go is the storm flight recorder: a bounded in-memory ring of
// per-storm event timelines — begin, one event per class fan-out, end —
// with per-class plan latencies and Select counts. The recorder is
// diagnostic state, deliberately outside Fingerprint(): fingerprints
// compare class chains and member holds, while flight timelines differ
// between a live storm and its replay by construction (replayed class
// events re-apply journaled plans, so they carry zero latency and zero
// Select calls).
//
// The recorder survives promotion because it is journal-backed by
// construction: every event it records corresponds to a storm-begin /
// storm-class / storm-end WAL record, and replaying those records on a
// follower rebuilds the same timeline (marked Replayed). A storm
// interrupted by a primary kill therefore stitches into ONE flight: the
// replayed pre-kill segment and the live post-promotion remainder
// append under the same storm sequence number.

import (
	"sync"
	"time"
)

// flightKeep bounds the ring — enough for a harness run's full storm
// history without unbounded growth on a long-lived daemon.
const flightKeep = 16

// FlightEvent is one recorded moment of a storm.
type FlightEvent struct {
	// Kind is "begin", "class" or "end".
	Kind string `json:"kind"`
	// AtMs offsets the event from the flight's begin time.
	AtMs float64 `json:"atMs"`
	// Class fields (Kind == "class" only).
	Class        string  `json:"class,omitempty"`
	Outcome      string  `json:"outcome,omitempty"`
	Satisfaction float64 `json:"satisfaction,omitempty"`
	// LatencyMs is the class's live plan latency (repair + Select +
	// fan-out); zero for replayed events, which re-apply a journaled
	// plan without planning.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Selects counts Select invocations behind this event (1 per live
	// class plan, 0 replayed).
	Selects int `json:"selects,omitempty"`
	// Replayed marks events rebuilt from the journal rather than
	// recorded live.
	Replayed bool `json:"replayed,omitempty"`
}

// Flight is one storm's recorded timeline.
type Flight struct {
	// Storm is the storm sequence number — the single ID a resumed
	// storm keeps across a primary kill and promotion.
	Storm int `json:"storm"`
	// Begin is when the recorder first saw the storm (live begin, or
	// replay time for a rebuilt segment).
	Begin time.Time `json:"begin"`
	// Links and Classes are the storm's scope as journaled.
	Links   int `json:"links"`
	Classes int `json:"classes"`
	// Resumed marks a storm finished by ResumeOpenStorm after a crash
	// or failover interrupted it.
	Resumed bool `json:"resumed,omitempty"`
	// Open is true until the end event lands.
	Open bool `json:"open,omitempty"`
	// Source names the node whose controller recorded this flight —
	// empty locally, annotated by the cluster /debug/storms aggregator.
	Source string `json:"source,omitempty"`
	// Events is the ordered timeline.
	Events []FlightEvent `json:"events"`
}

// flightRecorder holds the ring. It has its own lock and is only ever
// called either with the controller lock held or from single-storm
// execution paths; it never calls back into the controller, so the
// lock order controller→recorder is acyclic.
type flightRecorder struct {
	mu      sync.Mutex
	flights []*Flight // oldest first, bounded by flightKeep
}

// get finds the open flight for a storm sequence (newest match).
func (fr *flightRecorder) getLocked(seq int) *Flight {
	for i := len(fr.flights) - 1; i >= 0; i-- {
		if fr.flights[i].Storm == seq {
			return fr.flights[i]
		}
	}
	return nil
}

// begin opens a flight for a storm. Seeing the same storm sequence
// again (a replayed begin already rebuilt it) reuses the existing
// flight so live continuation appends to the replayed segment.
func (fr *flightRecorder) begin(seq, links, classes int, replayed bool) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if f := fr.getLocked(seq); f != nil {
		f.Open = true
		return
	}
	f := &Flight{
		Storm: seq, Begin: now(), Links: links, Classes: classes, Open: true,
		Events: []FlightEvent{{Kind: "begin", Replayed: replayed}},
	}
	fr.flights = append(fr.flights, f)
	if len(fr.flights) > flightKeep {
		fr.flights = fr.flights[len(fr.flights)-flightKeep:]
	}
}

// class records one class fan-out.
func (fr *flightRecorder) class(seq int, key, outcome string, sat, latencyMs float64, replayed bool) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	f := fr.getLocked(seq)
	if f == nil {
		return
	}
	ev := FlightEvent{
		Kind: "class", AtMs: ms(now().Sub(f.Begin)),
		Class: key, Outcome: outcome, Satisfaction: sat,
		Replayed: replayed,
	}
	if !replayed {
		ev.LatencyMs = latencyMs
		ev.Selects = 1
	}
	f.Events = append(f.Events, ev)
}

// end closes a flight.
func (fr *flightRecorder) end(seq int, replayed bool) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	f := fr.getLocked(seq)
	if f == nil {
		return
	}
	f.Open = false
	f.Events = append(f.Events, FlightEvent{
		Kind: "end", AtMs: ms(now().Sub(f.Begin)), Replayed: replayed,
	})
}

// resume marks a flight as continued past a crash/failover.
func (fr *flightRecorder) resume(seq int) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if f := fr.getLocked(seq); f != nil {
		f.Resumed = true
		f.Open = true
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Flights snapshots the recorded storms, newest first. The copies are
// the caller's to annotate (the cluster aggregator stamps Source).
func (c *Controller) Flights() []Flight {
	c.flights.mu.Lock()
	defer c.flights.mu.Unlock()
	out := make([]Flight, 0, len(c.flights.flights))
	for i := len(c.flights.flights) - 1; i >= 0; i-- {
		f := c.flights.flights[i]
		cp := *f
		cp.Events = append([]FlightEvent(nil), f.Events...)
		out = append(out, cp)
	}
	return out
}

// FlightSummary condenses the newest flight for /healthz.
type FlightSummary struct {
	Storm   int  `json:"storm"`
	Events  int  `json:"events"`
	Open    bool `json:"open,omitempty"`
	Resumed bool `json:"resumed,omitempty"`
}

func (c *Controller) flightSummary() *FlightSummary {
	c.flights.mu.Lock()
	defer c.flights.mu.Unlock()
	if len(c.flights.flights) == 0 {
		return nil
	}
	f := c.flights.flights[len(c.flights.flights)-1]
	return &FlightSummary{Storm: f.Storm, Events: len(f.Events), Open: f.Open, Resumed: f.Resumed}
}
