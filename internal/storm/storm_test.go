package storm_test

// Tests for the storm controller's live behavior: class identity,
// reservation accounting, plan-once-per-class storms, priority
// ordering, and graceful degradation. Durability (journal replay,
// crash-resume, snapshots) is covered in journal_test.go.

import (
	"math"
	"strings"
	"testing"

	"qoschain/internal/fault"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/paperexample"
	"qoschain/internal/profile"
	"qoschain/internal/storm"
)

// buildRegion returns a Table 1 deployment with every link resized to
// one uniform capacity — the same shape the EXT-O harness uses, small.
func buildRegion(name string, capacity float64) storm.Region {
	net := paperexample.Table1Network()
	for _, node := range net.Nodes() {
		for _, ref := range net.LinksOf(node) {
			_ = net.SetBandwidth(ref.From, ref.To, capacity)
		}
	}
	return storm.Region{
		Name:         name,
		Net:          net,
		Services:     paperexample.Table1Services(true),
		SenderHost:   "sender",
		ReceiverHost: "receiver",
	}
}

// classSpec builds a class over the Table 1 endpoints with the given
// ideal frame rate and QoS floor.
func classSpec(region string, ideal, floor float64) storm.ClassSpec {
	return storm.ClassSpec{
		Region:  region,
		Content: *paperexample.Table1Content(),
		Device:  *paperexample.Table1Device(),
		User: profile.User{
			Name: region + "-user",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, ideal),
			},
		},
		Floor: floor,
	}
}

// collapse multiplies every sender access link's capacity by factor and
// reports the changed links to the controller — a correlated backbone
// event in miniature.
func collapse(t *testing.T, c *storm.Controller, reg storm.Region, factor float64) []overlay.LinkRef {
	t.Helper()
	links := reg.Net.LinksOf(reg.SenderHost)
	for _, l := range links {
		capKbps, _, ok := reg.Net.Capacity(l.From, l.To)
		if !ok {
			t.Fatalf("no capacity for %s->%s", l.From, l.To)
		}
		if err := reg.Net.SetBandwidth(l.From, l.To, capKbps*factor); err != nil {
			t.Fatalf("SetBandwidth: %v", err)
		}
	}
	if err := c.OnLinkChange(reg.Name, links); err != nil {
		t.Fatalf("OnLinkChange: %v", err)
	}
	return links
}

// leak returns the absolute difference between the controller's member
// holds and the overlay's reserved total — must be zero at all times.
func leak(c *storm.Controller, reg storm.Region) float64 {
	return math.Abs(c.HeldKbps(reg.Name) - reg.Net.TotalReservedKbps())
}

func TestClassSpecKey(t *testing.T) {
	a := classSpec("r1", 30, 0.7)
	b := classSpec("r1", 30, 0.7)
	if a.Key() != b.Key() {
		t.Fatalf("equal specs produced different keys: %s vs %s", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), "r1-") {
		t.Fatalf("key %q does not carry the region prefix", a.Key())
	}
	c := classSpec("r1", 30, 0.75)
	if a.Key() == c.Key() {
		t.Fatal("different floors hashed to the same class key")
	}
	d := classSpec("r2", 30, 0.7)
	if a.Key() == d.Key() {
		t.Fatal("different regions hashed to the same class key")
	}
}

func TestOpenRejectsBadRegions(t *testing.T) {
	if _, err := storm.Open(storm.Config{}, []storm.Region{{Name: ""}}); err == nil {
		t.Fatal("Open accepted a nameless region")
	}
	reg := buildRegion("r1", 100000)
	if _, err := storm.Open(storm.Config{}, []storm.Region{reg, reg}); err == nil {
		t.Fatal("Open accepted duplicate regions")
	}
}

func TestAttachAccounting(t *testing.T) {
	reg := buildRegion("r1", 100000)
	c, err := storm.Open(storm.Config{}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	cls, err := c.AddClass(classSpec("r1", 30, 0.7))
	if err != nil {
		t.Fatalf("AddClass: %v", err)
	}
	if cls.Chain() == "" {
		t.Fatal("class admitted without a chain")
	}
	if _, err := c.Attach(cls.Key(), 5); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if got := c.Sessions(); got != 5 {
		t.Fatalf("Sessions() = %d, want 5", got)
	}
	if d := leak(c, reg); d != 0 {
		t.Fatalf("leak after attach: %.3f kbps", d)
	}
	if _, err := c.Attach("r1-no-such-class", 1); err == nil {
		t.Fatal("Attach accepted an unknown class key")
	}
	// An identical spec is the same equivalence class; a second AddClass
	// is a caller bug, not a second population.
	if _, err := c.AddClass(classSpec("r1", 30, 0.7)); err == nil {
		t.Fatal("AddClass accepted a duplicate class spec")
	}
	if c.Classes() != 1 {
		t.Fatalf("Classes() = %d after duplicate AddClass, want 1", c.Classes())
	}
}

func TestStormPlansOncePerClass(t *testing.T) {
	// 3 classes × 20 members; links hold 80 Mbps, so every class fits
	// pre-storm, and the 0.5 collapse forces redistribution.
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{Verify: true}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	ideals := []float64{30, 26, 22}
	for i, ideal := range ideals {
		cls, err := c.AddClass(classSpec("r1", ideal, 0.6))
		if err != nil {
			t.Fatalf("AddClass %d: %v", i, err)
		}
		if _, err := c.Attach(cls.Key(), 20); err != nil {
			t.Fatalf("Attach %d: %v", i, err)
		}
	}
	if d := leak(c, reg); d != 0 {
		t.Fatalf("pre-storm leak: %.3f kbps", d)
	}

	// Nothing pending → no storm.
	if rep, err := c.Storm(); err != nil || rep != nil {
		t.Fatalf("idle Storm() = (%v, %v), want (nil, nil)", rep, err)
	}

	collapse(t, c, reg, 0.5)
	rep, err := c.Storm()
	if err != nil {
		t.Fatalf("Storm: %v", err)
	}
	if rep == nil {
		t.Fatal("Storm absorbed nothing despite pending links")
	}
	if rep.AffectedSessions != 60 {
		t.Fatalf("AffectedSessions = %d, want 60", rep.AffectedSessions)
	}
	if rep.SelectCalls != rep.AffectedClasses {
		t.Fatalf("SelectCalls = %d for %d classes: must plan exactly once per class",
			rep.SelectCalls, rep.AffectedClasses)
	}
	if rep.SelectPerSession > 0.05 {
		t.Fatalf("SelectPerSession = %.4f, want ≤ 0.05", rep.SelectPerSession)
	}
	if rep.NaiveChecks != 60 || rep.Mismatches != 0 {
		t.Fatalf("equivalence check: %d checks, %d mismatches; want 60 checks, 0 mismatches",
			rep.NaiveChecks, rep.Mismatches)
	}
	if d := leak(c, reg); d != 0 {
		t.Fatalf("post-storm leak: %.3f kbps", d)
	}
	// Pending set was consumed; an immediate second storm is a no-op.
	if rep2, err := c.Storm(); err != nil || rep2 != nil {
		t.Fatalf("second Storm() = (%v, %v), want (nil, nil)", rep2, err)
	}
}

func TestStormPriorityOrder(t *testing.T) {
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	// Same ideal, different floors: the high-floor class is pushed
	// further below its floor by the same event and must re-plan first.
	for _, floor := range []float64{0.55, 0.85, 0.70} {
		cls, err := c.AddClass(classSpec("r1", 30, floor))
		if err != nil {
			t.Fatalf("AddClass floor %.2f: %v", floor, err)
		}
		if _, err := c.Attach(cls.Key(), 4); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	collapse(t, c, reg, 0.4)
	rep, err := c.Storm()
	if err != nil {
		t.Fatalf("Storm: %v", err)
	}
	if len(rep.Classes) < 2 {
		t.Fatalf("expected several affected classes, got %d", len(rep.Classes))
	}
	for i := 1; i < len(rep.Classes); i++ {
		if rep.Classes[i-1].Gap < rep.Classes[i].Gap {
			t.Fatalf("class %d (gap %.3f) ordered after class %d (gap %.3f): want furthest below floor first",
				i-1, rep.Classes[i-1].Gap, i, rep.Classes[i].Gap)
		}
	}
}

func TestStormGracefulDegradation(t *testing.T) {
	reg := buildRegion("r1", 20000)
	c, err := storm.Open(storm.Config{}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	cls, err := c.AddClass(classSpec("r1", 30, 0.7))
	if err != nil {
		t.Fatalf("AddClass: %v", err)
	}
	if _, err := c.Attach(cls.Key(), 3); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	// Collapse so hard no chain can reach the floor: the class must
	// degrade, never strand its members without accounting.
	collapse(t, c, reg, 0.02)
	rep, err := c.Storm()
	if err != nil {
		t.Fatalf("Storm: %v", err)
	}
	if rep.AffectedClasses != 1 {
		t.Fatalf("AffectedClasses = %d, want 1", rep.AffectedClasses)
	}
	out := rep.Classes[0]
	if out.Outcome != storm.OutcomeDegraded && out.Outcome != storm.OutcomeNoChain {
		t.Fatalf("outcome = %q, want degraded or no-chain", out.Outcome)
	}
	if rep.DegradedSessions != 3 {
		t.Fatalf("DegradedSessions = %d, want 3", rep.DegradedSessions)
	}
	got, ok := c.Class(cls.Key())
	if !ok || !got.Degraded() {
		t.Fatal("class not marked degraded after below-floor storm")
	}
	if d := leak(c, reg); d != 0 {
		t.Fatalf("leak after degradation: %.3f kbps", d)
	}
}

func TestOnFaultsFeedsPendingSet(t *testing.T) {
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	cls, err := c.AddClass(classSpec("r1", 30, 0.6))
	if err != nil {
		t.Fatalf("AddClass: %v", err)
	}
	if _, err := c.Attach(cls.Key(), 2); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	// Fire a correlated two-link collapse through the fault layer; the
	// changed-link reduction must reach the controller's pending set.
	fired := []fault.Fault{
		{Kind: fault.BandwidthCollapse, From: "sender", To: "p1", Factor: 0.5, Group: "backbone-t1"},
		{Kind: fault.BandwidthCollapse, From: "sender", To: "p2", Factor: 0.5, Group: "backbone-t1"},
	}
	for _, f := range fired {
		capKbps, _, _ := reg.Net.Capacity(f.From, f.To)
		if err := reg.Net.SetBandwidth(f.From, f.To, capKbps*f.Factor); err != nil {
			t.Fatalf("SetBandwidth: %v", err)
		}
	}
	n, err := c.OnFaults("r1", fired)
	if err != nil {
		t.Fatalf("OnFaults: %v", err)
	}
	if n != 2 {
		t.Fatalf("OnFaults reported %d changed links, want 2", n)
	}
	if st := c.Status(); st.PendingLinks != 2 {
		t.Fatalf("Status.PendingLinks = %d, want 2", st.PendingLinks)
	}
	if _, err := c.OnFaults("no-such-region", fired); err == nil {
		t.Fatal("OnFaults accepted an unknown region")
	}
}

func TestStatusSnapshot(t *testing.T) {
	reg := buildRegion("r1", 80000)
	c, err := storm.Open(storm.Config{}, []storm.Region{reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	cls, err := c.AddClass(classSpec("r1", 28, 0.6))
	if err != nil {
		t.Fatalf("AddClass: %v", err)
	}
	if _, err := c.Attach(cls.Key(), 7); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	collapse(t, c, reg, 0.5)
	if _, err := c.Storm(); err != nil {
		t.Fatalf("Storm: %v", err)
	}
	st := c.Status()
	if st.Regions != 1 || st.Classes != 1 || st.Sessions != 7 {
		t.Fatalf("Status = %+v, want 1 region, 1 class, 7 sessions", st)
	}
	if st.Storms != 1 || st.Active {
		t.Fatalf("Status storms/active = %d/%v, want 1/false", st.Storms, st.Active)
	}
	if st.PendingLinks != 0 {
		t.Fatalf("Status.PendingLinks = %d after storm, want 0", st.PendingLinks)
	}
	if st.LastStorm == nil || st.LastStorm.AffectedSessions != 7 {
		t.Fatalf("Status.LastStorm = %+v, want 7 affected sessions", st.LastStorm)
	}
}
