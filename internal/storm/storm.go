// Package storm implements mass re-composition: when a backbone event
// degrades many links at once, re-running the paper's Select once per
// affected session is O(sessions × Select) — a thundering herd. Most
// sessions are indistinguishable to the planner: they share a device
// profile, content, network region and QoS floor, so the chain Select
// would pick for one is the chain it would pick for all. The storm
// controller groups sessions into equivalence classes keyed by exactly
// that fingerprint, runs Select once per class against an incrementally
// repaired graph (graph.Cache.BuildRepair patches only edges touching
// the changed links), and fans the chosen chain out to every member
// with an atomic per-session hold swap (overlay.SwapChain — release
// old, acquire new, never a partial).
//
// Robustness properties:
//
//   - Bounded concurrency: class re-plans pass through a dedicated
//     admission lane (internal/admission.Limiter), so a storm never
//     starves client traffic of planner capacity.
//   - Priority ordering: classes furthest below their QoS floor after
//     the event re-plan first.
//   - Graceful degradation: when no above-floor chain exists for a
//     class the best below-floor chain is adopted (core.ErrBelowFloor);
//     when no chain exists at all, members keep their old holds rather
//     than being dropped.
//   - Crash safety: classes, attachments, network changes and per-class
//     fan-outs are journaled through the hash-chained WAL
//     (internal/journal). A crash mid-storm replays to a consistent
//     state and finishes the interrupted storm: fanned-out classes are
//     restored from their journal records, the remainder re-planned in
//     the recorded priority order.
//
// The controller owns every reservation it manages: all mutations of a
// region's overlay must either go through the controller or be reported
// to it via OnLinkChange, which is what keeps the incremental-repair
// bookkeeping (the per-region dirty-link map) complete.
package storm

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"qoschain/internal/admission"
	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/graph"
	"qoschain/internal/journal"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// Region is one overlay deployment the controller plans within: its
// live network, its deployed services, and the hosts the endpoints sit
// on. Regions are infrastructure, not journaled state — the embedder
// reconstructs them (fresh topology) and passes them to Open, which
// replays journaled mutations on top.
type Region struct {
	Name         string
	Net          *overlay.Network
	Services     []*service.Service
	SenderHost   string
	ReceiverHost string
}

// Config assembles a Controller.
type Config struct {
	// StateDir, when non-empty, makes the controller durable: every
	// command and storm fan-out is journaled there and replayed by Open.
	StateDir string
	// SnapshotEvery compacts the journal every that many records.
	// Default 512.
	SnapshotEvery int
	// LaneCapacity bounds concurrently re-planning classes — the storm
	// admission lane. Default 2.
	LaneCapacity int
	// Workers is how many goroutines drain the class queue during a
	// storm. Default 1, which is also what makes storms deterministic;
	// more workers keep every safety property but may order class plans
	// differently between runs.
	Workers int
	// Verify runs the naive per-session equivalence check: after each
	// class plan, Select is re-run for every member against the same
	// repaired graph and the result compared with the class chain. The
	// storm report counts any mismatch. Expensive — harness use only.
	Verify bool
	// CacheSize bounds the graph cache. Default max(64, 2×classes) is
	// applied lazily; set explicitly to override.
	CacheSize int
	// Counters receives storm.* and admission metrics; nil is a no-op
	// sink.
	Counters *metrics.Counters
	// FailPoints injects deterministic journal crash sites; nil
	// disables.
	FailPoints *journal.FailPoints
	// Sink, when set, embeds the controller inside a host that owns the
	// write-ahead log (the session manager): instead of appending to its
	// own journal the controller hands each storm fan-out record —
	// storm-begin, storm-class, storm-end — to the sink, which is
	// expected to journal it and replay it back through ReplayRecord on
	// recovery. Class, attach, detach and netchange records are NOT
	// forwarded: in embedded mode they are derived state, reconstructed
	// by the host replaying its own create/fault/delete commands.
	// Mutually exclusive with StateDir.
	Sink func(kind string, data json.RawMessage) error
	// HaltAfterFanouts, when > 0, aborts a storm with ErrHalted after
	// that many class fan-outs have been journaled — a deterministic
	// crash site for mid-storm failover tests. The journal is left with
	// a storm-begin and the completed class records but no storm-end,
	// exactly the state a process death mid-fan-out leaves behind.
	HaltAfterFanouts int
}

// ClassSpec is the equivalence-class fingerprint: everything the
// planner consumes that distinguishes one session population from
// another. Two sessions with equal specs would always be handed the
// same chain, which is what makes planning once per class sound.
type ClassSpec struct {
	// Region names the network region the class lives in.
	Region string `json:"region"`
	// Content/Device are the endpoints' profiles.
	Content profile.Content `json:"content"`
	Device  profile.Device  `json:"device"`
	// User carries the satisfaction preferences; Contact selects the
	// per-contact override set.
	User    profile.User         `json:"user"`
	Contact profile.ContactClass `json:"contact,omitempty"`
	// Floor is the class's QoS floor (minimum acceptable satisfaction).
	Floor float64 `json:"floor,omitempty"`
}

// Key derives the class's stable identity: the region name plus a hash
// of the canonical JSON encoding of the spec (Go marshals maps with
// sorted keys, so the encoding is deterministic).
func (s *ClassSpec) Key() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A spec that cannot marshal cannot be journaled either;
		// AddClass rejects it before the key is ever used.
		return s.Region + "-unmarshalable"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%s-%016x", s.Region, h.Sum64())
}

// Class is one live equivalence class: the planning inputs derived from
// its spec, the chain currently fanned out to its members, and the
// incremental-repair watermark.
type Class struct {
	spec   ClassSpec
	key    string
	selcfg core.Config
	in     graph.Input

	current  *core.Result
	kbps     float64
	degraded bool
	members  []*Session

	// repairGen is the region-net generation the class's cached graph
	// was last annotated at; links dirtied after it must be repaired
	// before the next Select.
	repairGen uint64
}

// Key returns the class's stable identity.
func (c *Class) Key() string { return c.key }

// Members returns how many sessions are attached.
func (c *Class) Members() int { return len(c.members) }

// Chain renders the class's current chain.
func (c *Class) Chain() string {
	if c.current == nil || !c.current.Found {
		return ""
	}
	return core.PathString(c.current.Path)
}

// Satisfaction returns the class chain's satisfaction.
func (c *Class) Satisfaction() float64 {
	if c.current == nil {
		return 0
	}
	return c.current.Satisfaction
}

// Degraded reports whether the class runs below its floor.
func (c *Class) Degraded() bool { return c.degraded }

// Session is one class member: its identity and the chain hold it
// currently owns on the region overlay.
type Session struct {
	ID       string
	class    *Class
	held     []overlay.Reservation
	degraded bool
	swaps    int // successful chain swaps fanned out to this member
}

// region is a Region plus the lookups the controller derives from it.
type region struct {
	Region
	hostOf map[service.ID]string
	// dirty maps each link to the net generation it last changed at —
	// the incremental-repair bookkeeping. A class whose repairGen is
	// older than a link's entry must have that link's edges repaired
	// before its next Select.
	dirty map[overlay.LinkRef]uint64
	// pending is the changed-link set of events not yet absorbed by a
	// storm.
	pending map[overlay.LinkRef]bool
}

// Controller is the storm controller. See the package comment.
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	cache   *graph.Cache
	lane    *admission.Limiter
	log     *journal.Log
	rec     *Recovery
	regions map[string]*region
	classes map[string]*Class
	order   []string // class keys in creation order (deterministic walks)
	// memberIdx resolves a member session ID to its Session across all
	// classes — the lookup the embedded (daemon) mode uses for detach
	// and per-session state.
	memberIdx map[string]*Session

	// flights is the storm flight recorder (see flight.go). Diagnostic
	// only: excluded from Fingerprint and rebuilt from the same WAL
	// records the state machine replays.
	flights flightRecorder
	// qos is the SLO burn-rate window (see qos.go); guarded by mu.
	qos qosState

	stormSeq        int
	fanouts         int // class fan-outs journaled in the current storm
	active          bool
	naiveChecks     int
	naiveMismatches int
	lastReport      *Report
	records         int // journal records since last snapshot
	replaying       bool
	openStorm       *beginRecord // begin seen without end during replay
	replayDone      map[string]bool
	journalDead     bool // a journal append failed; durability is lost
}

// Open builds a controller over the given regions and, when
// Config.StateDir is set, replays its journal: classes are re-planned,
// attachments re-reserved, network changes re-applied and completed
// fan-outs restored, all in command order, so the controller resumes
// exactly where it crashed. An interrupted storm (begin without end) is
// finished before Open returns.
func Open(cfg Config, regions []Region) (*Controller, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	if cfg.LaneCapacity <= 0 {
		cfg.LaneCapacity = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.StateDir != "" && cfg.Sink != nil {
		return nil, fmt.Errorf("storm: StateDir and Sink are mutually exclusive")
	}
	c := &Controller{
		cfg:       cfg,
		cache:     graph.NewCache(cfg.CacheSize),
		lane:      admission.NewLimiter(admission.LimiterConfig{Capacity: cfg.LaneCapacity, MaxQueue: 1 << 20, Metrics: cfg.Counters}),
		regions:   make(map[string]*region),
		classes:   make(map[string]*Class),
		memberIdx: make(map[string]*Session),
	}
	for _, r := range regions {
		if err := c.addRegionLocked(r); err != nil {
			return nil, err
		}
	}
	if cfg.StateDir != "" {
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Controller) addRegionLocked(r Region) error {
	if r.Name == "" || r.Net == nil {
		return fmt.Errorf("storm: region needs a name and a network")
	}
	if _, dup := c.regions[r.Name]; dup {
		return fmt.Errorf("storm: duplicate region %q", r.Name)
	}
	hostOf := make(map[service.ID]string, len(r.Services))
	for _, svc := range r.Services {
		hostOf[svc.ID] = svc.Host
	}
	c.regions[r.Name] = &region{
		Region:  r,
		hostOf:  hostOf,
		dirty:   make(map[overlay.LinkRef]uint64),
		pending: make(map[overlay.LinkRef]bool),
	}
	return nil
}

// EnsureRegion registers a region at runtime; a region with the same
// name already registered is left untouched (the daemon derives regions
// from session profiles, so the same region arrives once per session).
// Regions are infrastructure, never journaled — in embedded mode the
// host re-derives them during its own replay.
func (c *Controller) EnsureRegion(r Region) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[r.Name]; ok {
		return nil
	}
	return c.addRegionLocked(r)
}

// HasRegion reports whether a region is registered.
func (c *Controller) HasRegion(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.regions[name]
	return ok
}

// Regions lists registered region names in sorted order.
func (c *Controller) Regions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.regions))
	for name := range c.regions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegionNet returns a region's overlay network (nil when unknown) —
// the ledger the zero-leak audits compare HeldKbps against.
func (c *Controller) RegionNet(name string) *overlay.Network {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.regions[name]; ok {
		return r.Net
	}
	return nil
}

// Close closes the journal. The controller must not be used afterwards.
func (c *Controller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log != nil {
		err := c.log.Close()
		c.log = nil
		return err
	}
	return nil
}

// Recovery reports what Open replayed; nil for a fresh store.
func (c *Controller) Recovery() *Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

// AddClass registers and plans one equivalence class: the class graph
// is built, Select runs once, and the chosen chain becomes the chain
// every subsequently attached member receives. A below-floor best chain
// is adopted degraded; no chain at all rejects the class.
func (c *Controller) AddClass(spec ClassSpec) (*Class, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cls, err := c.addClassLocked(spec)
	if err != nil {
		return nil, err
	}
	if err := c.journalLocked(kindClass, spec); err != nil {
		return nil, err
	}
	return cls, nil
}

func (c *Controller) addClassLocked(spec ClassSpec) (*Class, error) {
	r, ok := c.regions[spec.Region]
	if !ok {
		return nil, fmt.Errorf("storm: unknown region %q", spec.Region)
	}
	key := spec.Key()
	if _, dup := c.classes[key]; dup {
		return nil, fmt.Errorf("storm: duplicate class %s", key)
	}
	prof, err := spec.User.SatisfactionProfile(spec.Contact)
	if err != nil {
		return nil, fmt.Errorf("storm: class %s: %w", key, err)
	}
	cls := &Class{
		spec: spec,
		key:  key,
		selcfg: core.Config{
			Profile:           prof,
			Budget:            spec.User.Budget,
			ReceiverCaps:      spec.Device.RenderCaps(),
			SatisfactionFloor: spec.Floor,
		},
	}
	cls.in = graph.Input{
		Content:      &cls.spec.Content,
		Device:       &cls.spec.Device,
		Services:     r.Services,
		Net:          r.Net,
		SenderHost:   r.SenderHost,
		ReceiverHost: receiverHost(&r.Region, &cls.spec),
	}
	gen := r.Net.Generation()
	g, err := c.cache.Build(cls.in)
	if err != nil {
		return nil, fmt.Errorf("storm: class %s: %w", key, err)
	}
	res, err := core.Select(g, cls.selcfg)
	switch {
	case err == nil:
	case errors.Is(err, core.ErrBelowFloor) && res != nil && res.Found:
		cls.degraded = true
	default:
		return nil, fmt.Errorf("storm: class %s: %w", key, err)
	}
	cls.current = res
	cls.kbps = requiredKbps(cls.selcfg, res)
	cls.repairGen = gen
	c.classes[key] = cls
	c.order = append(c.order, key)
	return cls, nil
}

// receiverHost resolves the overlay host a class's receiver sits on: the
// region-wide receiver when the region declares one, otherwise the
// device ID — the daemon's convention, where each device profile is its
// own leaf host on the region overlay.
func receiverHost(r *Region, spec *ClassSpec) string {
	if r.ReceiverHost != "" {
		return r.ReceiverHost
	}
	return spec.Device.ID
}

// EnsureClass returns the class for the spec, registering and planning
// it on first sight. The daemon calls this on every session create;
// only the first member of a fingerprint pays for a Select.
func (c *Controller) EnsureClass(spec ClassSpec) (*Class, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cls, ok := c.classes[spec.Key()]; ok {
		return cls, nil
	}
	cls, err := c.addClassLocked(spec)
	if err != nil {
		return nil, err
	}
	if err := c.journalLocked(kindClass, spec); err != nil {
		return nil, err
	}
	c.refreshGaugesLocked()
	return cls, nil
}

// Attach adds n member sessions to the class and reserves the class
// chain for each (one atomic ReserveChain per member). A member whose
// reservation is refused — the region filled up between plans — is
// attached degraded, holding nothing, rather than rejected: the next
// storm or recovery event re-plans it with everyone else.
func (c *Controller) Attach(key string, n int) ([]*Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, err := c.attachLocked(key, n)
	if err != nil {
		return nil, err
	}
	if err := c.journalLocked(kindAttach, attachRecord{Key: key, Count: n}); err != nil {
		return nil, err
	}
	c.refreshGaugesLocked()
	return ss, nil
}

func (c *Controller) attachLocked(key string, n int) ([]*Session, error) {
	cls, ok := c.classes[key]
	if !ok {
		return nil, fmt.Errorf("storm: unknown class %s", key)
	}
	if n <= 0 {
		return nil, fmt.Errorf("storm: attach count %d < 1", n)
	}
	out := make([]*Session, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.attachOneLocked(cls, fmt.Sprintf("%s#%d", key, len(cls.members))))
	}
	return out, nil
}

// attachOneLocked attaches a single member with the given ID and
// reserves the class chain for it; a refused reservation degrades the
// member instead of rejecting it.
func (c *Controller) attachOneLocked(cls *Class, id string) *Session {
	r := c.regions[cls.spec.Region]
	rs := c.chainReservations(cls)
	s := &Session{ID: id, class: cls, degraded: cls.degraded}
	if len(rs) > 0 {
		hold := append([]overlay.Reservation(nil), rs...)
		if err := r.Net.ReserveChain(hold); err == nil {
			s.held = hold
			c.markDirtyLocked(r, hold)
		} else {
			s.degraded = true
		}
	}
	cls.members = append(cls.members, s)
	c.memberIdx[id] = s
	c.qosMemberLocked(s, cls.Satisfaction())
	return s
}

// AttachSession attaches one member with a caller-chosen ID — the
// daemon's session ID, so the storm tier and the session manager agree
// on identity. The attachment is journaled with the explicit ID.
func (c *Controller) AttachSession(key, id string) (*Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cls, ok := c.classes[key]
	if !ok {
		return nil, fmt.Errorf("storm: unknown class %s", key)
	}
	if id == "" {
		return nil, fmt.Errorf("storm: attach needs a session ID")
	}
	if _, dup := c.memberIdx[id]; dup {
		return nil, fmt.Errorf("storm: duplicate member %s", id)
	}
	s := c.attachOneLocked(cls, id)
	if err := c.journalLocked(kindAttach, attachRecord{Key: key, Count: 1, ID: id}); err != nil {
		return nil, err
	}
	c.refreshGaugesLocked()
	if cc := c.cfg.Counters; cc != nil && !c.replaying {
		cc.Observe(metrics.SampleStormMembersPerClass, float64(len(cls.members)))
	}
	return s, nil
}

// DetachSession releases a member's hold and removes it from its class.
// The class itself stays registered — an empty class is cheap and keeps
// its plan warm for the next attach.
func (c *Controller) DetachSession(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.detachLocked(id); err != nil {
		return err
	}
	if err := c.journalLocked(kindDetach, detachRecord{ID: id}); err != nil {
		return err
	}
	c.refreshGaugesLocked()
	return nil
}

func (c *Controller) detachLocked(id string) error {
	s, ok := c.memberIdx[id]
	if !ok {
		return fmt.Errorf("storm: unknown member %s", id)
	}
	cls := s.class
	r := c.regions[cls.spec.Region]
	if len(s.held) > 0 {
		r.Net.ReleaseChain(s.held)
		c.markDirtyLocked(r, s.held)
		s.held = nil
	}
	for i, m := range cls.members {
		if m == s {
			cls.members = append(cls.members[:i], cls.members[i+1:]...)
			break
		}
	}
	delete(c.memberIdx, id)
	c.qosPublishLocked()
	return nil
}

// MemberView is the per-session state the daemon surfaces for an
// attached member: the class plan it rides plus its own hold.
type MemberView struct {
	ID           string
	ClassKey     string
	Region       string
	Chain        string
	Path         []graph.NodeID
	Formats      []media.Format
	Satisfaction float64
	Cost         float64
	Kbps         float64
	Degraded     bool
	Swaps        int
	Held         []overlay.Reservation
}

// MemberState returns the view for one attached member.
func (c *Controller) MemberState(id string) (MemberView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.memberIdx[id]
	if !ok {
		return MemberView{}, false
	}
	cls := s.class
	v := MemberView{
		ID:           id,
		ClassKey:     cls.key,
		Region:       cls.spec.Region,
		Chain:        cls.Chain(),
		Satisfaction: cls.Satisfaction(),
		Kbps:         cls.kbps,
		Degraded:     s.degraded,
		Swaps:        s.swaps,
		Held:         append([]overlay.Reservation(nil), s.held...),
	}
	if cls.current != nil && cls.current.Found {
		v.Path = append([]graph.NodeID(nil), cls.current.Path...)
		v.Formats = append([]media.Format(nil), cls.current.Formats...)
		v.Cost = cls.current.Cost
	}
	return v, true
}

// NotePending marks a changed-link set pending+dirty without journaling
// it — the embedded mode's variant of OnLinkChange, used when the host
// already journals the fault that caused the change and re-derives the
// link set during its own replay.
func (c *Controller) NotePending(regionName string, links []overlay.LinkRef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[regionName]
	if !ok {
		return fmt.Errorf("storm: unknown region %q", regionName)
	}
	if len(links) == 0 {
		return nil
	}
	gen := r.Net.Generation()
	for _, l := range links {
		r.pending[l] = true
		r.dirty[l] = gen
	}
	return nil
}

// refreshGaugesLocked re-publishes the class-skew gauge: how many
// classes currently have at least one attached member.
func (c *Controller) refreshGaugesLocked() {
	cc := c.cfg.Counters
	if cc == nil || c.replaying {
		return
	}
	attached := 0
	for _, cls := range c.classes {
		if len(cls.members) > 0 {
			attached++
		}
	}
	cc.SetGauge(metrics.GaugeStormClassesAttached, float64(attached))
}

// chainReservations renders the class's current chain as the per-link
// reservations one member holds (consecutive distinct hosts, class
// bitrate each). Empty when the class has no chain or needs no
// bandwidth.
func (c *Controller) chainReservations(cls *Class) []overlay.Reservation {
	if cls.current == nil || !cls.current.Found || cls.kbps <= 0 {
		return nil
	}
	hosts := c.chainHosts(cls)
	rs := make([]overlay.Reservation, 0, len(hosts)-1)
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] == hosts[i] {
			continue
		}
		rs = append(rs, overlay.Reservation{From: hosts[i-1], To: hosts[i], Kbps: cls.kbps})
	}
	return rs
}

// chainHosts returns the ordered hosts of the class chain (sender,
// service hosts, receiver).
func (c *Controller) chainHosts(cls *Class) []string {
	r := c.regions[cls.spec.Region]
	hosts := []string{r.SenderHost}
	for _, id := range cls.current.Path[1 : len(cls.current.Path)-1] {
		if h, ok := r.hostOf[service.ID(id)]; ok {
			hosts = append(hosts, h)
		}
	}
	return append(hosts, receiverHost(&r.Region, &cls.spec))
}

// markDirtyLocked stamps the links of a reservation set with the
// region's current generation — the incremental-repair bookkeeping for
// reservation changes the controller itself makes.
func (c *Controller) markDirtyLocked(r *region, rs []overlay.Reservation) {
	gen := r.Net.Generation()
	for _, res := range rs {
		if res.From == res.To {
			continue
		}
		r.dirty[overlay.LinkRef{From: res.From, To: res.To}] = gen
	}
}

// OnLinkChange reports that an external event (fault injection, a real
// network monitor) changed the QoS of the given links in a region. The
// links are marked pending for the next Storm and dirty for graph
// repair, and the post-change link state is journaled so recovery can
// re-apply it to a freshly built region.
func (c *Controller) OnLinkChange(regionName string, links []overlay.LinkRef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[regionName]
	if !ok {
		return fmt.Errorf("storm: unknown region %q", regionName)
	}
	if len(links) == 0 {
		return nil
	}
	rec := c.noteLinkChangeLocked(r, links)
	return c.journalLocked(kindNetChange, rec)
}

// noteLinkChangeLocked marks the links pending+dirty and captures their
// post-change state for the journal.
func (c *Controller) noteLinkChangeLocked(r *region, links []overlay.LinkRef) netChangeRecord {
	gen := r.Net.Generation()
	rec := netChangeRecord{Region: r.Name, Links: make([]linkChange, 0, len(links))}
	for _, l := range links {
		r.pending[l] = true
		r.dirty[l] = gen
		lc := linkChange{From: l.From, To: l.To}
		if capacity, _, ok := r.Net.Capacity(l.From, l.To); ok {
			lc.CapacityKbps = capacity
		} else {
			lc.Missing = true
		}
		if _, delay, loss, ok := r.Net.Link(l.From, l.To); ok {
			lc.DelayMs, lc.LossRate = delay, loss
		} else {
			lc.Down = true
		}
		rec.Links = append(rec.Links, lc)
	}
	return rec
}

// OnFaults is the fault-injection adapter: it reduces a batch of fired
// faults to their changed-link set (fault.ChangedLinks) and reports it
// for the region. The returned count is how many links changed.
func (c *Controller) OnFaults(regionName string, fired []fault.Fault) (int, error) {
	c.mu.Lock()
	r, ok := c.regions[regionName]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("storm: unknown region %q", regionName)
	}
	links := fault.ChangedLinks(fired, r.Net)
	if len(links) == 0 {
		return 0, nil
	}
	return len(links), c.OnLinkChange(regionName, links)
}

// requiredKbps converts a planned chain's delivered parameters into the
// bitrate one member must reserve.
func requiredKbps(cfg core.Config, res *core.Result) float64 {
	if res == nil || !res.Found {
		return 0
	}
	model := cfg.Bitrate
	if model == nil {
		model = media.DefaultBitrate
	}
	return model.RequiredKbps(res.Params)
}

// classKbps recomputes the member bitrate for a fresh plan result.
func (cls *Class) planKbps(res *core.Result) float64 {
	return requiredKbps(cls.selcfg, res)
}

// Classes returns the number of registered classes.
func (c *Controller) Classes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.classes)
}

// Sessions returns the number of attached member sessions.
func (c *Controller) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cls := range c.classes {
		n += len(cls.members)
	}
	return n
}

// Class returns a registered class by key.
func (c *Controller) Class(key string) (*Class, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cls, ok := c.classes[key]
	return cls, ok
}

// HeldKbps sums the chain holds of every member in the region — the
// number that must equal the overlay's TotalReservedKbps when the
// controller owns all reservations (the zero-leak audit).
func (c *Controller) HeldKbps(regionName string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, key := range c.order {
		cls := c.classes[key]
		if cls.spec.Region != regionName {
			continue
		}
		for _, s := range cls.members {
			for _, res := range s.held {
				total += res.Kbps
			}
		}
	}
	return total
}

// CacheStats exposes the planner cache counters (repairs vs rebuilds).
func (c *Controller) CacheStats() graph.CacheStats { return c.cache.Stats() }

// Fingerprint renders the controller's deterministic state — every
// class's chain and every member's holds — as canonical JSON, the
// byte-identity token the crash tests compare across restarts.
func (c *Controller) Fingerprint() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	type memberState struct {
		ID       string                `json:"id"`
		Held     []overlay.Reservation `json:"held,omitempty"`
		Degraded bool                  `json:"degraded,omitempty"`
	}
	type classState struct {
		Key          string        `json:"key"`
		Chain        string        `json:"chain"`
		Satisfaction float64       `json:"satisfaction"`
		Kbps         float64       `json:"kbps"`
		Degraded     bool          `json:"degraded"`
		Members      []memberState `json:"members,omitempty"`
	}
	out := make([]classState, 0, len(c.order))
	for _, key := range c.order {
		cls := c.classes[key]
		cs := classState{
			Key: key, Chain: cls.Chain(), Satisfaction: cls.Satisfaction(),
			Kbps: cls.kbps, Degraded: cls.degraded,
		}
		for _, s := range cls.members {
			cs.Members = append(cs.Members, memberState{ID: s.ID, Held: s.held, Degraded: s.degraded})
		}
		out = append(out, cs)
	}
	data, err := json.Marshal(out)
	return string(data), err
}

// Status is the operator view exposed on /healthz.
type Status struct {
	Regions          int     `json:"regions"`
	Classes          int     `json:"classes"`
	Sessions         int     `json:"sessions"`
	Storms           int     `json:"storms"`
	Active           bool    `json:"active"`
	PendingLinks     int     `json:"pendingLinks"`
	DegradedSessions int     `json:"degradedSessions"`
	LaneInFlight     int     `json:"laneInFlight"`
	LaneQueued       int     `json:"laneQueued"`
	LastStorm        *Report `json:"lastStorm,omitempty"`
	// LastFlight summarizes the newest flight-recorder timeline.
	LastFlight *FlightSummary `json:"lastFlight,omitempty"`
}

// Status snapshots the controller for /healthz.
func (c *Controller) Status() Status {
	lane := c.lane.Stats()
	flight := c.flightSummary()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		LastFlight:   flight,
		Regions:      len(c.regions),
		Classes:      len(c.classes),
		Storms:       c.stormSeq,
		Active:       c.active,
		LaneInFlight: lane.InFlight,
		LaneQueued:   lane.QueueLen,
		LastStorm:    c.lastReport,
	}
	for _, r := range c.regions {
		st.PendingLinks += len(r.pending)
	}
	for _, cls := range c.classes {
		st.Sessions += len(cls.members)
		for _, s := range cls.members {
			if s.degraded {
				st.DegradedSessions++
			}
		}
	}
	return st
}

// sortLinks renders a link set deterministically.
func sortLinks(set map[overlay.LinkRef]bool) []overlay.LinkRef {
	out := make([]overlay.LinkRef, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// now is stubbed in tests that need deterministic reports.
var now = time.Now
