package storm

// journal.go makes the controller crash-safe. Every state-changing
// command — class registration, member attachment, reported network
// changes, and each class's storm fan-out — is appended to the
// hash-chained WAL (internal/journal) as a typed Event record. Open
// replays the journal against freshly constructed regions: classes are
// re-planned deterministically, attachments re-reserved, link changes
// re-applied, and completed fan-outs restored from their journaled
// results. A storm that began but never ended (crash mid-storm) is
// finished during Open: the classes already fanned out are restored
// from their records, the remainder re-planned in the recorded
// priority order against the replayed network — exactly the state the
// crashed process would have produced.
//
// Periodic snapshots (Config.SnapshotEvery) compact the journal: the
// snapshot captures the full controller state — every region's
// link-level QoS, every class's chain, every member's holds — so
// replay can start from it instead of the beginning of time.

import (
	"encoding/json"
	"fmt"
	"sort"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/journal"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
)

// Journal record kinds.
const (
	kindClass      = "class"
	kindAttach     = "attach"
	kindDetach     = "detach"
	kindNetChange  = "netchange"
	kindStormBegin = "storm-begin"
	kindStormClass = "storm-class"
	kindStormEnd   = "storm-end"
)

type attachRecord struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
	// ID, when set, is the caller-chosen member ID of a single
	// AttachSession; Count is 1 and the legacy mint loop is skipped.
	ID string `json:"id,omitempty"`
}

type detachRecord struct {
	ID string `json:"id"`
}

// linkChange is one link's post-change state, captured when the change
// is reported so replay can re-apply it to a fresh region.
type linkChange struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	CapacityKbps float64 `json:"capacityKbps"`
	DelayMs      float64 `json:"delayMs,omitempty"`
	LossRate     float64 `json:"lossRate,omitempty"`
	Down         bool    `json:"down,omitempty"`
	Missing      bool    `json:"missing,omitempty"`
}

type netChangeRecord struct {
	Region string       `json:"region"`
	Links  []linkChange `json:"links"`
}

// beginRecord opens a storm: the absorbed changed-link set and the
// affected classes in their decided priority order, so a crash-resume
// re-plans the remainder in exactly the order the live storm would
// have used.
type beginRecord struct {
	Storm   int                          `json:"storm"`
	Links   map[string][]overlay.LinkRef `json:"links"`
	Classes []string                     `json:"classes"`
}

// classRecord is one class's completed fan-out: the plan result to
// re-apply verbatim on replay (replay re-runs the member swaps, never
// Select).
type classRecord struct {
	Storm        int            `json:"storm"`
	Key          string         `json:"key"`
	Outcome      string         `json:"outcome"`
	Found        bool           `json:"found"`
	Path         []graph.NodeID `json:"path,omitempty"`
	Formats      []media.Format `json:"formats,omitempty"`
	Params       media.Params   `json:"params,omitempty"`
	Satisfaction float64        `json:"satisfaction"`
	Cost         float64        `json:"cost"`
	Kbps         float64        `json:"kbps"`
	Degraded     bool           `json:"degraded"`
}

type endRecord struct {
	Storm int `json:"storm"`
}

// Recovery reports what Open rebuilt from the journal.
type Recovery struct {
	// Records is how many journal records were replayed.
	Records int `json:"records"`
	// FromSnapshot reports whether replay started from a snapshot.
	FromSnapshot bool `json:"fromSnapshot,omitempty"`
	// Classes and Sessions count the rebuilt state.
	Classes  int `json:"classes"`
	Sessions int `json:"sessions"`
	// ResumedStorm is set when a crash interrupted a storm and Open
	// finished it; Resumed is that storm's report.
	ResumedStorm bool    `json:"resumedStorm,omitempty"`
	Resumed      *Report `json:"resumed,omitempty"`
}

// journalLocked appends one typed record. Nil log (in-memory
// controller) and replay are no-ops. An append failure is permanent:
// the journal can no longer be trusted to match memory.
//
// In embedded mode (Config.Sink) the controller owns no log of its own:
// storm fan-out records are handed to the host's WAL and everything
// else — classes, attachments, net changes — is derived state the host
// reconstructs by replaying its own commands, so it is not forwarded.
func (c *Controller) journalLocked(kind string, payload any) error {
	if c.replaying {
		return nil
	}
	if c.cfg.Sink != nil {
		switch kind {
		case kindStormBegin, kindStormClass, kindStormEnd:
			data, err := json.Marshal(payload)
			if err != nil {
				return err
			}
			return c.cfg.Sink(kind, data)
		default:
			return nil
		}
	}
	if c.log == nil {
		return nil
	}
	if c.journalDead {
		return fmt.Errorf("storm: journal unusable after earlier append failure")
	}
	rec, err := journal.EncodeEvent(kind, payload)
	if err != nil {
		return err
	}
	if _, err := c.log.Append(rec); err != nil {
		c.journalDead = true
		return fmt.Errorf("storm: journal: %w", err)
	}
	c.records++
	if c.records >= c.cfg.SnapshotEvery {
		if err := c.snapshotLocked(); err != nil {
			return err
		}
		c.records = 0
	}
	return nil
}

// recover opens the journal and replays it. Called from Open with no
// lock held (the controller is not yet published).
func (c *Controller) recover() error {
	log, rec, err := journal.OpenLog(c.cfg.StateDir, journal.Options{
		FailPoints: c.cfg.FailPoints,
		Counters:   c.cfg.Counters,
	})
	if err != nil {
		return fmt.Errorf("storm: open journal: %w", err)
	}
	c.log = log

	c.mu.Lock()
	c.replaying = true
	rep := &Recovery{}
	if len(rec.SnapshotData) > 0 {
		if err := c.restoreSnapshotLocked(rec.SnapshotData); err != nil {
			c.replaying = false
			c.mu.Unlock()
			return err
		}
		rep.FromSnapshot = true
	}
	for _, r := range rec.Records {
		if err := c.replayLocked(r.Data); err != nil {
			c.replaying = false
			c.mu.Unlock()
			return fmt.Errorf("storm: replay record %d: %w", r.Seq, err)
		}
		rep.Records++
	}
	rep.Classes = len(c.classes)
	for _, cls := range c.classes {
		rep.Sessions += len(cls.members)
	}
	c.mu.Unlock()

	stormRep, err := c.ResumeOpenStorm()
	if err != nil {
		return err
	}
	if stormRep != nil {
		rep.ResumedStorm = true
		rep.Resumed = stormRep
	}
	c.rec = rep
	return nil
}

// ResumeOpenStorm finishes a storm whose begin record was replayed
// without a matching end — a crash (or failover) mid-fan-out. Classes
// with a journaled fan-out were restored verbatim during replay; the
// remainder re-plan live here, in the recorded priority order, so the
// resulting state is byte-identical to what the interrupted process
// would have produced. Exported for embedded mode: the host calls it
// after its own replay completes (the promoted follower's Reconcile).
// Returns (nil, nil) when no storm was open.
func (c *Controller) ResumeOpenStorm() (*Report, error) {
	c.mu.Lock()
	open := c.openStorm
	c.openStorm = nil
	if open == nil {
		c.replaying = false
		c.replayDone = nil
		c.mu.Unlock()
		return nil, nil
	}
	c.replaying = false
	c.active = true
	c.fanouts = 0
	done := c.replayDone
	c.replayDone = nil
	var items []planItem
	for _, key := range open.Classes {
		if done[key] {
			continue
		}
		if cls, ok := c.classes[key]; ok {
			items = append(items, planItem{cls: cls})
		}
	}
	total := 0
	for _, links := range open.Links {
		total += len(links)
	}
	c.mu.Unlock()
	// The replayed begin already opened this storm's flight; mark it
	// resumed so the pre-kill and post-promotion segments read as one
	// storm ID with a failover in the middle.
	c.flights.resume(open.Storm)
	stormRep, err := c.execute(open.Storm, total, items, true)
	if err != nil {
		return nil, fmt.Errorf("storm: resume storm %d: %w", open.Storm, err)
	}
	c.mu.Lock()
	c.lastReport = stormRep
	c.mu.Unlock()
	return stormRep, nil
}

// replayLocked applies one journal record.
func (c *Controller) replayLocked(record []byte) error {
	kind, data, err := journal.DecodeEvent(record)
	if err != nil {
		return err
	}
	return c.replayKindLocked(kind, data)
}

// ReplayRecord applies one record by kind — the embedded-mode replay
// entry point. The host replays its WAL and hands the storm-kind
// records back in order; after the last one it calls ResumeOpenStorm.
func (c *Controller) ReplayRecord(kind string, data json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.replaying
	c.replaying = true
	err := c.replayKindLocked(kind, data)
	c.replaying = prev
	return err
}

func (c *Controller) replayKindLocked(kind string, data json.RawMessage) error {
	switch kind {
	case kindClass:
		var spec ClassSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return err
		}
		_, err := c.addClassLocked(spec)
		return err
	case kindAttach:
		var rec attachRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		if rec.ID != "" {
			cls, ok := c.classes[rec.Key]
			if !ok {
				return fmt.Errorf("attach for unknown class %s", rec.Key)
			}
			c.attachOneLocked(cls, rec.ID)
			return nil
		}
		_, err := c.attachLocked(rec.Key, rec.Count)
		return err
	case kindDetach:
		var rec detachRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		return c.detachLocked(rec.ID)
	case kindNetChange:
		var rec netChangeRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		return c.replayNetChangeLocked(rec)
	case kindStormBegin:
		var rec beginRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		c.stormSeq = rec.Storm
		c.openStorm = &rec
		c.replayDone = make(map[string]bool)
		// The live storm absorbed these links out of pending.
		total := 0
		for name, links := range rec.Links {
			total += len(links)
			if r, ok := c.regions[name]; ok {
				for _, l := range links {
					delete(r.pending, l)
				}
			}
		}
		c.flights.begin(rec.Storm, total, len(rec.Classes), true)
		return nil
	case kindStormClass:
		var rec classRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		cls, ok := c.classes[rec.Key]
		if !ok {
			return fmt.Errorf("storm-class for unknown class %s", rec.Key)
		}
		var res *core.Result
		if rec.Found {
			res = &core.Result{
				Found: true, Path: rec.Path, Formats: rec.Formats,
				Params: rec.Params, Satisfaction: rec.Satisfaction, Cost: rec.Cost,
			}
		}
		c.applyPlanLocked(cls, res, rec.Degraded)
		c.flights.class(rec.Storm, rec.Key, rec.Outcome, rec.Satisfaction, 0, true)
		if c.replayDone != nil {
			c.replayDone[rec.Key] = true
		}
		return nil
	case kindStormEnd:
		var rec endRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		c.flights.end(rec.Storm, true)
		c.openStorm = nil
		c.replayDone = nil
		return nil
	default:
		return fmt.Errorf("unknown journal record kind %q", kind)
	}
}

// replayNetChangeLocked re-applies a reported link change to the fresh
// region network and restores the pending/dirty bookkeeping.
func (c *Controller) replayNetChangeLocked(rec netChangeRecord) error {
	r, ok := c.regions[rec.Region]
	if !ok {
		return fmt.Errorf("netchange for unknown region %q", rec.Region)
	}
	var links []overlay.LinkRef
	for _, lc := range rec.Links {
		links = append(links, overlay.LinkRef{From: lc.From, To: lc.To})
		if lc.Missing {
			continue
		}
		if _, _, ok := r.Net.Capacity(lc.From, lc.To); !ok {
			// The fresh topology lacks the link the live network had —
			// reconstruct it rather than diverge.
			r.Net.AddLink(lc.From, lc.To, lc.CapacityKbps, lc.DelayMs, lc.LossRate)
		}
		if err := r.Net.SetBandwidth(lc.From, lc.To, lc.CapacityKbps); err != nil {
			return err
		}
		if lc.Down {
			if !r.Net.LinkDown(lc.From, lc.To) {
				if err := r.Net.FailLink(lc.From, lc.To); err != nil {
					return err
				}
			}
			continue
		}
		if r.Net.LinkDown(lc.From, lc.To) {
			if err := r.Net.RecoverLink(lc.From, lc.To); err != nil {
				return err
			}
		}
		if err := r.Net.SetLoss(lc.From, lc.To, lc.LossRate); err != nil {
			return err
		}
		if err := r.Net.SetDelay(lc.From, lc.To, lc.DelayMs); err != nil {
			return err
		}
	}
	gen := r.Net.Generation()
	for _, l := range links {
		r.pending[l] = true
		r.dirty[l] = gen
	}
	return nil
}

// Snapshot types: the full controller state, sufficient to rebuild
// without the records that preceded it.
type snapshot struct {
	StormSeq int          `json:"stormSeq"`
	Regions  []regionSnap `json:"regions"`
	Classes  []classSnap  `json:"classes"`
}

type regionSnap struct {
	Name      string            `json:"name"`
	DownHosts []string          `json:"downHosts,omitempty"`
	Links     []linkChange      `json:"links"`
	Pending   []overlay.LinkRef `json:"pending,omitempty"`
}

type chainSnap struct {
	Path         []graph.NodeID `json:"path"`
	Formats      []media.Format `json:"formats"`
	Params       media.Params   `json:"params,omitempty"`
	Satisfaction float64        `json:"satisfaction"`
	Cost         float64        `json:"cost"`
}

type memberSnap struct {
	ID       string                `json:"id"`
	Held     []overlay.Reservation `json:"held,omitempty"`
	Degraded bool                  `json:"degraded,omitempty"`
}

type classSnap struct {
	Spec     ClassSpec    `json:"spec"`
	Chain    *chainSnap   `json:"chain,omitempty"`
	Kbps     float64      `json:"kbps"`
	Degraded bool         `json:"degraded"`
	Members  []memberSnap `json:"members,omitempty"`
}

// snapshotLocked compacts the journal with a full-state snapshot.
func (c *Controller) snapshotLocked() error {
	snap := snapshot{StormSeq: c.stormSeq}
	regionNames := make([]string, 0, len(c.regions))
	for name := range c.regions {
		regionNames = append(regionNames, name)
	}
	sort.Strings(regionNames)
	for _, name := range regionNames {
		r := c.regions[name]
		rs := regionSnap{Name: name, DownHosts: r.Net.DownHosts(), Pending: sortLinks(r.pending)}
		for _, ref := range regionLinks(r.Net) {
			lc := linkChange{From: ref.From, To: ref.To}
			lc.CapacityKbps, _, _ = r.Net.Capacity(ref.From, ref.To)
			if _, delay, loss, ok := r.Net.Link(ref.From, ref.To); ok {
				lc.DelayMs, lc.LossRate = delay, loss
			}
			lc.Down = r.Net.LinkDown(ref.From, ref.To)
			rs.Links = append(rs.Links, lc)
		}
		snap.Regions = append(snap.Regions, rs)
	}
	for _, key := range c.order {
		cls := c.classes[key]
		cs := classSnap{Spec: cls.spec, Kbps: cls.kbps, Degraded: cls.degraded}
		if cls.current != nil && cls.current.Found {
			cs.Chain = &chainSnap{
				Path: cls.current.Path, Formats: cls.current.Formats,
				Params: cls.current.Params, Satisfaction: cls.current.Satisfaction,
				Cost: cls.current.Cost,
			}
		}
		for _, s := range cls.members {
			cs.Members = append(cs.Members, memberSnap{ID: s.ID, Held: s.held, Degraded: s.degraded})
		}
		snap.Classes = append(snap.Classes, cs)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := c.log.Snapshot(data); err != nil {
		c.journalDead = true
		return fmt.Errorf("storm: snapshot: %w", err)
	}
	return nil
}

// restoreSnapshotLocked rebuilds the controller from a snapshot. Link
// capacities are lifted while member holds re-reserve (a collapse may
// have shrunk capacity below the standing reservations live), then
// restored, then failed links and hosts re-failed.
func (c *Controller) restoreSnapshotLocked(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storm: decode snapshot: %w", err)
	}
	c.stormSeq = snap.StormSeq
	const liftKbps = 1e15
	for _, rs := range snap.Regions {
		r, ok := c.regions[rs.Name]
		if !ok {
			return fmt.Errorf("storm: snapshot region %q not configured", rs.Name)
		}
		for _, lc := range rs.Links {
			if _, _, ok := r.Net.Capacity(lc.From, lc.To); !ok {
				r.Net.AddLink(lc.From, lc.To, lc.CapacityKbps, lc.DelayMs, lc.LossRate)
			}
			if err := r.Net.SetBandwidth(lc.From, lc.To, liftKbps); err != nil {
				return err
			}
			if err := r.Net.SetLoss(lc.From, lc.To, lc.LossRate); err != nil {
				return err
			}
			if err := r.Net.SetDelay(lc.From, lc.To, lc.DelayMs); err != nil {
				return err
			}
		}
	}
	for _, cs := range snap.Classes {
		r, ok := c.regions[cs.Spec.Region]
		if !ok {
			return fmt.Errorf("storm: snapshot class in unknown region %q", cs.Spec.Region)
		}
		prof, err := cs.Spec.User.SatisfactionProfile(cs.Spec.Contact)
		if err != nil {
			return err
		}
		cls := &Class{
			spec:     cs.Spec,
			key:      cs.Spec.Key(),
			kbps:     cs.Kbps,
			degraded: cs.Degraded,
		}
		cls.selcfg = core.Config{
			Profile:           prof,
			Budget:            cs.Spec.User.Budget,
			ReceiverCaps:      cs.Spec.Device.RenderCaps(),
			SatisfactionFloor: cs.Spec.Floor,
		}
		cls.in = graph.Input{
			Content:      &cls.spec.Content,
			Device:       &cls.spec.Device,
			Services:     r.Services,
			Net:          r.Net,
			SenderHost:   r.SenderHost,
			ReceiverHost: receiverHost(&r.Region, &cls.spec),
		}
		if cs.Chain != nil {
			cls.current = &core.Result{
				Found: true, Path: cs.Chain.Path, Formats: cs.Chain.Formats,
				Params: cs.Chain.Params, Satisfaction: cs.Chain.Satisfaction,
				Cost: cs.Chain.Cost,
			}
		}
		// Members restore while capacities are lifted so the exact
		// journaled holds re-reserve without capacity pushback.
		for _, ms := range cs.Members {
			s := &Session{ID: ms.ID, class: cls, degraded: ms.Degraded}
			if len(ms.Held) > 0 {
				hold := append([]overlay.Reservation(nil), ms.Held...)
				if err := r.Net.ReserveChain(hold); err != nil {
					return fmt.Errorf("storm: restore hold for %s: %w", ms.ID, err)
				}
				s.held = hold
			}
			cls.members = append(cls.members, s)
			c.memberIdx[s.ID] = s
		}
		c.classes[cls.key] = cls
		c.order = append(c.order, cls.key)
	}
	for _, rs := range snap.Regions {
		r := c.regions[rs.Name]
		for _, lc := range rs.Links {
			if err := r.Net.SetBandwidth(lc.From, lc.To, lc.CapacityKbps); err != nil {
				return err
			}
			if lc.Down && !r.Net.LinkDown(lc.From, lc.To) {
				if err := r.Net.FailLink(lc.From, lc.To); err != nil {
					return err
				}
			}
		}
		for _, host := range rs.DownHosts {
			if !r.Net.HostDown(host) {
				if err := r.Net.FailHost(host); err != nil {
					return err
				}
			}
		}
		gen := r.Net.Generation()
		for _, l := range rs.Pending {
			r.pending[l] = true
			r.dirty[l] = gen
		}
	}
	return nil
}

// regionLinks enumerates every directed link of a network.
func regionLinks(n *overlay.Network) []overlay.LinkRef {
	set := make(map[overlay.LinkRef]bool)
	for _, node := range n.Nodes() {
		for _, ref := range n.LinksOf(node) {
			set[ref] = true
		}
	}
	return sortLinks(set)
}
