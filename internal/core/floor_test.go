package core

import (
	"errors"
	"math"
	"testing"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// floorGraph: sender -> conv -> receiver, with a bandwidth that caps the
// delivered frame rate at 15 fps (satisfaction 0.5 against ideal 30).
func floorGraph(t *testing.T) *graph.Graph {
	t.Helper()
	conv := service.FormatConverter("conv", media.Opaque(1), media.Opaque(2))
	g := graph.NewGraph("s", "r")
	if err := g.AddService(conv); err != nil {
		t.Fatal(err)
	}
	edges := []*graph.Edge{
		{From: graph.SenderID, To: "conv", Format: media.Opaque(1), BandwidthKbps: 1500,
			SourceParams: media.Params{media.ParamFrameRate: 30}},
		{From: "conv", To: graph.ReceiverID, Format: media.Opaque(2), BandwidthKbps: 1500},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func floorConfig(floor float64) Config {
	return Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		}),
		SatisfactionFloor: floor,
	}
}

func TestSelectAboveFloorPasses(t *testing.T) {
	res, err := Select(floorGraph(t), floorConfig(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || math.Abs(res.Satisfaction-0.5) > 1e-9 {
		t.Errorf("result = %+v", res)
	}
}

func TestSelectBelowFloorReturnsChainAndError(t *testing.T) {
	res, err := Select(floorGraph(t), floorConfig(0.8))
	if !errors.Is(err, ErrBelowFloor) {
		t.Fatalf("err = %v, want ErrBelowFloor", err)
	}
	// The degraded chain is still fully reported for callers that prefer
	// it over nothing.
	if res == nil || !res.Found || math.Abs(res.Satisfaction-0.5) > 1e-9 {
		t.Errorf("below-floor result = %+v", res)
	}
	if PathString(res.Path) != "sender,conv,receiver" {
		t.Errorf("path = %s", PathString(res.Path))
	}
}

func TestSelectZeroFloorDisabled(t *testing.T) {
	if _, err := Select(floorGraph(t), floorConfig(0)); err != nil {
		t.Fatalf("floor 0 must not reject: %v", err)
	}
}

func TestSelectFloorScanVariantAgrees(t *testing.T) {
	cfg := floorConfig(0.8)
	cfg.Scan = true
	_, err := Select(floorGraph(t), cfg)
	if !errors.Is(err, ErrBelowFloor) {
		t.Fatalf("scan variant err = %v, want ErrBelowFloor", err)
	}
}
