package core

import (
	"fmt"
	"math"
	"strings"

	"qoschain/internal/graph"
	"qoschain/internal/media"
)

// Display conventions of the paper's Table 1: the delivered frame rate is
// printed as the nearest integer, and the satisfaction is truncated (not
// rounded) to two decimals — 0.666… prints as 0.66 and 0.769… as 0.76.

// DisplayFPS renders a frame rate the way Table 1 prints it.
func DisplayFPS(fps float64) int { return int(math.Round(fps)) }

// DisplaySat renders a satisfaction the way Table 1 prints it.
func DisplaySat(sat float64) string {
	truncated := math.Floor(sat*100+1e-9) / 100
	return fmt.Sprintf("%.2f", truncated)
}

// joinIDs renders a node list as the paper does: "{ sender, T10, T20}".
func joinIDs(ids []graph.NodeID, upper bool) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = displayID(id, upper)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// displayID renders a node ID in the paper's typography: service IDs
// like "t10" print as "T10"; sender/receiver stay lower case.
func displayID(id graph.NodeID, upper bool) string {
	s := string(id)
	if !upper || id == graph.SenderID || id == graph.ReceiverID {
		return s
	}
	if len(s) > 1 && s[0] == 't' && allDigits(s[1:]) {
		return "T" + s[1:]
	}
	return s
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// PathString renders a selected path as "sender,T7,receiver".
func PathString(path []graph.NodeID) string {
	parts := make([]string, len(path))
	for i, id := range path {
		parts[i] = displayID(id, true)
	}
	return strings.Join(parts, ",")
}

// TraceTable renders the recorded rounds in the layout of Table 1:
// one row per round with the considered set, candidate set, selected
// service, selected path, delivered frame rate and user satisfaction.
func (r *Result) TraceTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s | %-55s | %-60s | %-10s | %-22s | %-5s | %s\n",
		"Round", "Considered Set (VT)", "Candidate set (CS)", "Selected", "Selected Path", "FPS", "User satisfaction")
	b.WriteString(strings.Repeat("-", 190) + "\n")
	for _, round := range r.Rounds {
		fmt.Fprintf(&b, "%-5d | %-55s | %-60s | %-10s | %-22s | %-5d | %s\n",
			round.Number,
			joinIDs(round.Considered, true),
			joinIDs(round.Candidates, true),
			displayID(round.Selected, true),
			PathString(round.Path),
			DisplayFPS(round.Params.Get(media.ParamFrameRate)),
			DisplaySat(round.Satisfaction),
		)
	}
	return b.String()
}

// Summary renders the final chain in one line.
func (r *Result) Summary() string {
	if !r.Found {
		return "no adaptation chain found"
	}
	return fmt.Sprintf("path=%s satisfaction=%s params=%s cost=%.2f",
		PathString(r.Path), DisplaySat(r.Satisfaction), r.Params, r.Cost)
}
