package core

import "qoschain/internal/graph"

// candidateHeap is the priority queue behind Config.UseHeap: a max-heap
// on (satisfaction, recency, natural ID) with lazy deletion — superseded
// entries stay in the heap and are skipped on pop by comparing the label
// pointer against the live candidate map.
type candidateHeap []heapEntry

type heapEntry struct {
	id graph.NodeID
	l  *label
}

func (h candidateHeap) Len() int { return len(h) }

func (h candidateHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.l.sat != b.l.sat {
		return a.l.sat > b.l.sat
	}
	if a.l.seq != b.l.seq {
		return a.l.seq > b.l.seq
	}
	return graph.LessNatural(a.id, b.id)
}

func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }

func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
