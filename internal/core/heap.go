package core

// candidateHeap is the default candidate selector: a hand-rolled binary
// max-heap on (satisfaction, recency) with lazy deletion — superseded
// entries stay in the heap and are skipped on pop by comparing the label
// pointer against the live candidate slot. It avoids the interface boxing
// of container/heap, and entries live inline in one growable slice (no
// per-entry allocation).
//
// Every label carries a unique seq, so (sat, seq) is a total order and no
// further tie-break is needed: pop order is fully determined, matching
// the linear scan's (sat, seq, natural-ID) rule exactly.
type candidateHeap struct {
	es []heapEntry
}

type heapEntry struct {
	idx int32 // interned vertex index
	l   *label
}

func (h *candidateHeap) len() int { return len(h.es) }

// less orders entry i before entry j (higher satisfaction first, most
// recent label on ties).
func (h *candidateHeap) less(i, j int) bool {
	a, b := h.es[i].l, h.es[j].l
	if a.sat != b.sat {
		return a.sat > b.sat
	}
	return a.seq > b.seq
}

func (h *candidateHeap) push(e heapEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *candidateHeap) pop() heapEntry {
	top := h.es[0]
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es[n] = heapEntry{} // drop the label reference
	h.es = h.es[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(r, c) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h.es[i], h.es[c] = h.es[c], h.es[i]
		i = c
	}
	return top
}
