package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSelectCtxCancelledBeforeStart(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SelectCtx(ctx, g, fpsConfig())
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, must also carry the context's cause", err)
	}
	if res == nil || res.Found {
		t.Errorf("aborted selection must report not-found, got %+v", res)
	}
}

func TestSelectCtxExpiredDeadline(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SelectCtx(ctx, g, fpsConfig())
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrAborted wrapping DeadlineExceeded", err)
	}
}

func TestSelectCtxBackgroundMatchesSelect(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	plain, err1 := Select(g, fpsConfig())
	ctxed, err2 := SelectCtx(context.Background(), g, fpsConfig())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if plain.Satisfaction != ctxed.Satisfaction || len(plain.Path) != len(ctxed.Path) {
		t.Errorf("Select and SelectCtx diverge: %+v vs %+v", plain, ctxed)
	}
}

func TestSelectBatchCtxCancelledMarksAllAborted(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	cfgs := []Config{fpsConfig(), fpsConfig(), fpsConfig()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := SelectBatchCtx(ctx, g, cfgs)
	if len(results) != len(cfgs) {
		t.Fatalf("results = %d, want one per entry", len(results))
	}
	for i, br := range results {
		if !errors.Is(br.Err, ErrAborted) {
			t.Errorf("entry %d err = %v, want ErrAborted", i, br.Err)
		}
	}
}

func TestSelectBatchCtxBackgroundCompletes(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	cfgs := []Config{fpsConfig(), fpsConfig()}
	for i, br := range SelectBatchCtx(context.Background(), g, cfgs) {
		if br.Err != nil || !br.Result.Found {
			t.Errorf("entry %d: err=%v found=%v", i, br.Err, br.Result != nil && br.Result.Found)
		}
	}
}
