package core_test

// Result-identity proof for the optimized selection hot path. The seed
// implementation kept per-label format sets as map[media.Format]bool,
// evaluated edges with freshly allocated maps, and scanned a candidate
// map for the best label. referenceSelect below is a direct
// transliteration of that implementation (maps, Profile.Optimize, linear
// scan over a map with the seed's exact tie-breaking); the tests assert
// that the bitset/arena/heap implementation returns bit-identical
// results — path, formats, satisfaction, cost and expanded count — on
// hundreds of random graphs, for both the default heap and the
// Config.Scan variant, and that the greedy optimum matches the
// exhaustive baseline.

import (
	"math"
	"math/rand"
	"testing"

	"qoschain/internal/baseline"
	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
	"qoschain/internal/workload"
)

// referenceEvalEdge is the seed implementation of core.EvalEdge: fresh
// maps per call, media.Params.Min, satisfaction.Profile.Optimize.
func referenceEvalEdge(g *graph.Graph, cfg core.Config, upstreamParams media.Params, upstreamCost float64, e *graph.Edge) (params media.Params, sat, cost float64, ok bool) {
	node, exists := g.Node(e.To)
	if !exists {
		return nil, 0, 0, false
	}
	caps := upstreamParams.Clone()
	if caps == nil {
		caps = media.Params{}
	}
	for _, name := range cfg.Profile.Params() {
		if _, present := caps[name]; !present {
			caps[name] = 0
		}
	}
	var domains map[media.Param]satisfaction.Domain
	cost = upstreamCost + e.TransmissionCost
	bandwidth := e.BandwidthKbps
	if math.IsInf(bandwidth, 1) {
		bandwidth = 0
	}
	if node.Service != nil {
		caps = caps.Min(node.Service.Caps)
		domains = node.Service.Domains
		cost += node.Service.Cost
		if host, declared := g.HostResources(node.Host); declared {
			if node.Service.MemoryMB > host.MemoryMB {
				return nil, 0, 0, false
			}
			if node.Service.CPUPerKbps > 0 && host.CPUMips > 0 {
				cpuCap := host.CPUMips / node.Service.CPUPerKbps
				if bandwidth <= 0 || cpuCap < bandwidth {
					bandwidth = cpuCap
				}
			}
		}
	} else if node.IsReceiver() && cfg.ReceiverCaps != nil {
		caps = caps.Min(cfg.ReceiverCaps)
	}
	if cfg.Budget > 0 && cost > cfg.Budget {
		return nil, 0, 0, false
	}
	params, sat, ok = cfg.Profile.Optimize(satisfaction.Request{
		Caps:      caps,
		Domains:   domains,
		Bitrate:   cfg.Bitrate,
		Bandwidth: bandwidth,
	})
	if !ok {
		return nil, 0, 0, false
	}
	return params, sat, cost, true
}

type refLabel struct {
	sat     float64
	params  media.Params
	parent  graph.NodeID
	edge    *graph.Edge
	cost    float64
	formats map[media.Format]bool
	seq     int
}

// referenceSelect is the seed implementation of core.Select: candidate
// labels in a map, format sets as maps, linear scan with the
// (satisfaction, recency, natural ID) tie-break.
func referenceSelect(g *graph.Graph, cfg core.Config) (*core.Result, bool) {
	labels := make(map[graph.NodeID]*refLabel)
	expanded := make(map[graph.NodeID]*refLabel)
	inVT := map[graph.NodeID]bool{graph.SenderID: true}
	seq := 0
	res := &core.Result{}

	relax := func(from graph.NodeID, e *graph.Edge) {
		if inVT[e.To] {
			return
		}
		var upstreamParams media.Params
		var upstreamCost float64
		var upstreamFormats map[media.Format]bool
		if from == graph.SenderID {
			upstreamParams = e.SourceParams
		} else {
			ul := expanded[from]
			if ul == nil {
				return
			}
			upstreamParams = ul.params
			upstreamCost = ul.cost
			upstreamFormats = ul.formats
		}
		if upstreamFormats[e.Format] {
			return
		}
		params, sat, cost, ok := referenceEvalEdge(g, cfg, upstreamParams, upstreamCost, e)
		if !ok {
			return
		}
		cur := labels[e.To]
		if cur != nil && sat <= cur.sat {
			return
		}
		formats := make(map[media.Format]bool, len(upstreamFormats)+1)
		for f := range upstreamFormats {
			formats[f] = true
		}
		formats[e.Format] = true
		seq++
		labels[e.To] = &refLabel{sat: sat, params: params, parent: from, edge: e, cost: cost, formats: formats, seq: seq}
	}

	for _, e := range g.Out(graph.SenderID) {
		relax(graph.SenderID, e)
	}

	for {
		if len(labels) == 0 {
			res.Found = false
			return res, false
		}
		var best graph.NodeID
		var bestL *refLabel
		for id, l := range labels {
			if bestL == nil || l.sat > bestL.sat ||
				(l.sat == bestL.sat && (l.seq > bestL.seq ||
					(l.seq == bestL.seq && graph.LessNatural(id, best)))) {
				best, bestL = id, l
			}
		}
		delete(labels, best)
		inVT[best] = true
		res.Expanded++
		expanded[best] = bestL
		if best == graph.ReceiverID {
			res.Found = true
			res.Satisfaction = bestL.sat
			res.Params = bestL.params
			res.Cost = bestL.cost
			var revPath []graph.NodeID
			var revFormats []media.Format
			cur, curL := best, bestL
			for curL != nil {
				revPath = append(revPath, cur)
				revFormats = append(revFormats, curL.edge.Format)
				cur = curL.parent
				if cur == graph.SenderID {
					break
				}
				curL = expanded[cur]
			}
			revPath = append(revPath, graph.SenderID)
			for i := len(revPath) - 1; i >= 0; i-- {
				res.Path = append(res.Path, revPath[i])
			}
			for i := len(revFormats) - 1; i >= 0; i-- {
				res.Formats = append(res.Formats, revFormats[i])
			}
			return res, true
		}
		for _, e := range g.Out(best) {
			relax(best, e)
		}
	}
}

// assertIdentical requires exact equality — including float bits — of
// everything a Result reports about the selected chain.
func assertIdentical(t *testing.T, seed int64, name string, want, got *core.Result) {
	t.Helper()
	if want.Found != got.Found {
		t.Fatalf("seed %d: %s Found = %v, want %v", seed, name, got.Found, want.Found)
	}
	if core.PathString(got.Path) != core.PathString(want.Path) {
		t.Fatalf("seed %d: %s path = %s, want %s", seed, name, core.PathString(got.Path), core.PathString(want.Path))
	}
	if len(got.Formats) != len(want.Formats) {
		t.Fatalf("seed %d: %s formats = %v, want %v", seed, name, got.Formats, want.Formats)
	}
	for i := range want.Formats {
		if got.Formats[i] != want.Formats[i] {
			t.Fatalf("seed %d: %s format[%d] = %v, want %v", seed, name, i, got.Formats[i], want.Formats[i])
		}
	}
	if got.Satisfaction != want.Satisfaction {
		t.Fatalf("seed %d: %s satisfaction = %.17g, want %.17g", seed, name, got.Satisfaction, want.Satisfaction)
	}
	if got.Cost != want.Cost {
		t.Fatalf("seed %d: %s cost = %.17g, want %.17g", seed, name, got.Cost, want.Cost)
	}
	if got.Expanded != want.Expanded {
		t.Fatalf("seed %d: %s expanded = %d, want %d", seed, name, got.Expanded, want.Expanded)
	}
	if !want.Params.Equal(got.Params, 0) {
		t.Fatalf("seed %d: %s params = %v, want %v", seed, name, got.Params, want.Params)
	}
}

// TestSelectMatchesSeedReference runs the optimized implementation (both
// candidate-selection variants) against the seed transliteration on 220
// random graphs of varying size and asserts bit-identical results.
func TestSelectMatchesSeedReference(t *testing.T) {
	for seed := int64(0); seed < 220; seed++ {
		sc := workload.Generate(rand.New(rand.NewSource(seed)),
			workload.Spec{Services: 10 + int(seed%40)})
		ref, found := referenceSelect(sc.Graph, sc.Config)

		heapRes, errHeap := core.Select(sc.Graph, sc.Config)
		scanCfg := sc.Config
		scanCfg.Scan = true
		scanRes, errScan := core.Select(sc.Graph, scanCfg)

		if (errHeap == nil) != found || (errScan == nil) != found {
			t.Fatalf("seed %d: reference found=%v, heap err=%v, scan err=%v",
				seed, found, errHeap, errScan)
		}
		if !found {
			// Failure results still must agree on the work performed.
			if heapRes.Expanded != ref.Expanded || scanRes.Expanded != ref.Expanded {
				t.Fatalf("seed %d: failure expanded %d/%d, want %d",
					seed, heapRes.Expanded, scanRes.Expanded, ref.Expanded)
			}
			continue
		}
		assertIdentical(t, seed, "heap", ref, heapRes)
		assertIdentical(t, seed, "scan", ref, scanRes)
	}
}

// TestSelectMatchesExhaustiveBaseline asserts the greedy optimum equals
// the exhaustive search's optimum satisfaction on small random graphs.
func TestSelectMatchesExhaustiveBaseline(t *testing.T) {
	for seed := int64(500); seed < 540; seed++ {
		sc := workload.Generate(rand.New(rand.NewSource(seed)), workload.Spec{Services: 8})
		res, err := core.Select(sc.Graph, sc.Config)
		exh, _ := baseline.Exhaustive(sc.Graph, sc.Config, 0)
		if (err == nil) != exh.Found {
			t.Fatalf("seed %d: select err=%v, exhaustive found=%v", seed, err, exh.Found)
		}
		if err != nil {
			continue
		}
		if math.Abs(res.Satisfaction-exh.Satisfaction) > 1e-9 {
			t.Fatalf("seed %d: select sat %.17g != exhaustive %.17g",
				seed, res.Satisfaction, exh.Satisfaction)
		}
	}
}

// TestSelectBatchMatchesSequential asserts the parallel batch planner
// returns exactly what per-receiver sequential Select calls return.
func TestSelectBatchMatchesSequential(t *testing.T) {
	sc := workload.Generate(rand.New(rand.NewSource(99)), workload.Spec{Services: 40})
	cfgs := make([]core.Config, 24)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
				media.ParamFrameRate: satisfaction.Linear{M: 0, I: 5 + float64(i)},
			}),
		}
	}
	batch := core.SelectBatch(sc.Graph, cfgs)
	if len(batch) != len(cfgs) {
		t.Fatalf("batch returned %d results for %d configs", len(batch), len(cfgs))
	}
	for i := range cfgs {
		want, wantErr := core.Select(sc.Graph, cfgs[i])
		got := batch[i]
		if (wantErr == nil) != (got.Err == nil) {
			t.Fatalf("cfg %d: batch err=%v, sequential err=%v", i, got.Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		assertIdentical(t, int64(i), "batch", want, got.Result)
	}
}
