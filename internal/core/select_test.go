package core

import (
	"errors"
	"math"
	"testing"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

func fpsProfile() satisfaction.Profile {
	return satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})
}

func fpsConfig() Config {
	return Config{Profile: fpsProfile()}
}

// chainGraph builds sender -F1-> t1 -F2-> receiver with the given edge
// bandwidths (kbps; default bitrate model charges 100 kbps per fps).
func chainGraph(t *testing.T, bwIn, bwOut float64) *graph.Graph {
	t.Helper()
	g := graph.NewGraph("s", "r")
	t1 := service.FormatConverter("t1", media.Opaque(1), media.Opaque(2))
	if err := g.AddService(t1); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "t1", Format: media.Opaque(1),
		BandwidthKbps: bwIn, SourceParams: media.Params{media.ParamFrameRate: 30}})
	mustEdge(t, g, &graph.Edge{From: "t1", To: graph.ReceiverID, Format: media.Opaque(2),
		BandwidthKbps: bwOut})
	return g
}

func mustEdge(t *testing.T, g *graph.Graph, e *graph.Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSimpleChain(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("chain should be found")
	}
	if len(res.Path) != 3 || res.Path[0] != graph.SenderID || res.Path[1] != "t1" || res.Path[2] != graph.ReceiverID {
		t.Errorf("Path = %v", res.Path)
	}
	if len(res.Formats) != 2 || res.Formats[0] != media.Opaque(1) || res.Formats[1] != media.Opaque(2) {
		t.Errorf("Formats = %v", res.Formats)
	}
	if res.Satisfaction != 1 {
		t.Errorf("Satisfaction = %v, want 1 (30 fps fits in 3000 kbps)", res.Satisfaction)
	}
	if res.Cost != 1 { // FormatConverter costs 1
		t.Errorf("Cost = %v, want 1", res.Cost)
	}
}

func TestSelectBottleneckEdge(t *testing.T) {
	g := chainGraph(t, 3000, 1500) // 1500 kbps → 15 fps on the last hop
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params.Get(media.ParamFrameRate)-15) > 1e-6 {
		t.Errorf("delivered fps = %v, want 15", res.Params.Get(media.ParamFrameRate))
	}
	if math.Abs(res.Satisfaction-0.5) > 1e-6 {
		t.Errorf("Satisfaction = %v, want 0.5", res.Satisfaction)
	}
}

func TestSelectServiceCapsBind(t *testing.T) {
	g := graph.NewGraph("s", "r")
	red := service.FrameRateReducer("red1", media.Opaque(1), 12)
	if err := g.AddService(red); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "red1", Format: media.Opaque(1),
		BandwidthKbps: math.Inf(1), SourceParams: media.Params{media.ParamFrameRate: 30}})
	mustEdge(t, g, &graph.Edge{From: "red1", To: graph.ReceiverID, Format: red.Outputs[0],
		BandwidthKbps: math.Inf(1)})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.Get(media.ParamFrameRate); got != 12 {
		t.Errorf("delivered fps = %v, want the service cap 12", got)
	}
}

func TestSelectPicksBetterOfTwoChains(t *testing.T) {
	g := graph.NewGraph("s", "r")
	a := service.FormatConverter("ta", media.Opaque(1), media.Opaque(10))
	b := service.FormatConverter("tb", media.Opaque(2), media.Opaque(11))
	for _, s := range []*service.Service{a, b} {
		if err := g.AddService(s); err != nil {
			t.Fatal(err)
		}
	}
	src := media.Params{media.ParamFrameRate: 30}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "ta", Format: media.Opaque(1), BandwidthKbps: 1000, SourceParams: src})
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "tb", Format: media.Opaque(2), BandwidthKbps: 2500, SourceParams: src})
	mustEdge(t, g, &graph.Edge{From: "ta", To: graph.ReceiverID, Format: media.Opaque(10), BandwidthKbps: 3000})
	mustEdge(t, g, &graph.Edge{From: "tb", To: graph.ReceiverID, Format: media.Opaque(11), BandwidthKbps: 3000})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Path[1] != "tb" {
		t.Errorf("should route via tb (25 fps > 10 fps), got %v", res.Path)
	}
	if math.Abs(res.Params.Get(media.ParamFrameRate)-25) > 1e-6 {
		t.Errorf("fps = %v, want 25", res.Params.Get(media.ParamFrameRate))
	}
}

func TestSelectDirectEdgeWins(t *testing.T) {
	// A direct sender→receiver edge beats any trans-coded chain when
	// the device decodes the source format at full quality.
	g := chainGraph(t, 1000, 1000)
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: graph.ReceiverID, Format: media.Opaque(1),
		BandwidthKbps: 3000, SourceParams: media.Params{media.ParamFrameRate: 30}})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 2 {
		t.Errorf("direct path should win: %v", res.Path)
	}
	if res.Cost != 0 {
		t.Errorf("direct path costs nothing, got %v", res.Cost)
	}
}

func TestSelectNoChain(t *testing.T) {
	g := graph.NewGraph("s", "r")
	t1 := service.FormatConverter("t1", media.Opaque(1), media.Opaque(99))
	if err := g.AddService(t1); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "t1", Format: media.Opaque(1),
		BandwidthKbps: 1000, SourceParams: media.Params{media.ParamFrameRate: 30}})
	res, err := Select(g, fpsConfig())
	if !errors.Is(err, ErrNoChain) {
		t.Fatalf("want ErrNoChain, got %v", err)
	}
	if res == nil || res.Found {
		t.Error("failure result should be non-nil with Found=false")
	}
}

func TestSelectEmptyProfileRejected(t *testing.T) {
	g := chainGraph(t, 1000, 1000)
	if _, err := Select(g, Config{}); err == nil {
		t.Error("empty profile should be rejected")
	}
}

func TestSelectBudgetConstraint(t *testing.T) {
	// Two chains: cheap low-quality (cost 1) and expensive high-quality
	// (cost 10). With budget 5, the cheap one must be selected.
	g := graph.NewGraph("s", "r")
	cheap := service.FormatConverter("cheap", media.Opaque(1), media.Opaque(10))
	cheap.Cost = 1
	expensive := service.FormatConverter("posh", media.Opaque(2), media.Opaque(11))
	expensive.Cost = 10
	for _, s := range []*service.Service{cheap, expensive} {
		if err := g.AddService(s); err != nil {
			t.Fatal(err)
		}
	}
	src := media.Params{media.ParamFrameRate: 30}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "cheap", Format: media.Opaque(1), BandwidthKbps: 1000, SourceParams: src})
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "posh", Format: media.Opaque(2), BandwidthKbps: 3000, SourceParams: src})
	mustEdge(t, g, &graph.Edge{From: "cheap", To: graph.ReceiverID, Format: media.Opaque(10), BandwidthKbps: 3000})
	mustEdge(t, g, &graph.Edge{From: "posh", To: graph.ReceiverID, Format: media.Opaque(11), BandwidthKbps: 3000})

	unconstrained, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained.Path[1] != "posh" {
		t.Fatalf("without budget the better chain should win: %v", unconstrained.Path)
	}

	cfg := fpsConfig()
	cfg.Budget = 5
	constrained, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Path[1] != "cheap" {
		t.Errorf("budget 5 should force the cheap chain: %v", constrained.Path)
	}
	if constrained.Cost > 5 {
		t.Errorf("Cost = %v exceeds budget", constrained.Cost)
	}
}

func TestSelectBudgetInfeasible(t *testing.T) {
	g := chainGraph(t, 3000, 3000) // service costs 1
	cfg := fpsConfig()
	cfg.Budget = 0.5
	_, err := Select(g, cfg)
	if !errors.Is(err, ErrNoChain) {
		t.Errorf("budget below every chain should yield ErrNoChain, got %v", err)
	}
}

func TestSelectTransmissionCost(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	for _, e := range g.Out(graph.SenderID) {
		e.TransmissionCost = 2
	}
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 { // 2 transmission + 1 service
		t.Errorf("Cost = %v, want 3", res.Cost)
	}
}

func TestSelectReceiverCaps(t *testing.T) {
	g := chainGraph(t, math.Inf(1), math.Inf(1))
	cfg := fpsConfig()
	cfg.ReceiverCaps = media.Params{media.ParamFrameRate: 10}
	res, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.Get(media.ParamFrameRate); got != 10 {
		t.Errorf("device cap should bind: fps = %v, want 10", got)
	}
}

func TestSelectDistinctFormatRule(t *testing.T) {
	// t1 emits the same format it consumed (F1); a path
	// sender -F1-> t1 -F1-> receiver repeats F1 and must be rejected,
	// leaving the lower-quality direct edge as the only chain.
	g := graph.NewGraph("s", "r")
	echo := &service.Service{
		ID:      "echo",
		Inputs:  []media.Format{media.Opaque(1)},
		Outputs: []media.Format{media.Opaque(1)},
	}
	if err := g.AddService(echo); err != nil {
		t.Fatal(err)
	}
	src := media.Params{media.ParamFrameRate: 30}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "echo", Format: media.Opaque(1), BandwidthKbps: 3000, SourceParams: src})
	mustEdge(t, g, &graph.Edge{From: "echo", To: graph.ReceiverID, Format: media.Opaque(1), BandwidthKbps: 3000})
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: graph.ReceiverID, Format: media.Opaque(1), BandwidthKbps: 900, SourceParams: src})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 2 {
		t.Errorf("repeated-format chain must be rejected; got path %v", res.Path)
	}
	if math.Abs(res.Params.Get(media.ParamFrameRate)-9) > 1e-6 {
		t.Errorf("fps = %v, want 9 via direct edge", res.Params.Get(media.ParamFrameRate))
	}
}

func TestSelectZeroBandwidthEdgeUnusable(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	// Add an overhead so that a zero-capacity edge is truly infeasible.
	cfg := fpsConfig()
	cfg.Bitrate = media.LinearBitrate{PerUnit: map[media.Param]float64{media.ParamFrameRate: 100}, Overhead: 10}
	for _, e := range g.Out("t1") {
		e.BandwidthKbps = 5 // below the 10 kbps overhead
	}
	_, err := Select(g, cfg)
	if !errors.Is(err, ErrNoChain) {
		t.Errorf("want ErrNoChain when the only exit edge cannot carry the stream, got %v", err)
	}
}

func TestSelectTraceRecordsRounds(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	cfg := fpsConfig()
	cfg.Trace = true
	res, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("Rounds = %d, want 2 (t1, receiver)", len(res.Rounds))
	}
	r1 := res.Rounds[0]
	if r1.Number != 1 || r1.Selected != "t1" {
		t.Errorf("round 1 = %+v", r1)
	}
	if len(r1.Considered) != 1 || r1.Considered[0] != graph.SenderID {
		t.Errorf("round 1 considered = %v", r1.Considered)
	}
	r2 := res.Rounds[1]
	if r2.Selected != graph.ReceiverID {
		t.Errorf("round 2 selected = %v", r2.Selected)
	}
	if len(r2.Considered) != 2 {
		t.Errorf("round 2 considered = %v", r2.Considered)
	}
	if PathString(r2.Path) != "sender,T1,receiver" {
		t.Errorf("round 2 path = %q", PathString(r2.Path))
	}
}

func TestSelectLongChain(t *testing.T) {
	// sender -> t1 -> t2 -> ... -> t5 -> receiver, each hop narrower.
	g := graph.NewGraph("s", "r")
	const n = 5
	prev := graph.SenderID
	for i := 1; i <= n; i++ {
		s := service.FormatConverter(service.ID(media.Opaque(i).Encoding), media.Opaque(i), media.Opaque(i+1))
		if err := g.AddService(s); err != nil {
			t.Fatal(err)
		}
		e := &graph.Edge{From: prev, To: graph.NodeID(s.ID), Format: media.Opaque(i),
			BandwidthKbps: 3000 - float64(i)*100}
		if prev == graph.SenderID {
			e.SourceParams = media.Params{media.ParamFrameRate: 30}
		}
		mustEdge(t, g, e)
		prev = graph.NodeID(s.ID)
	}
	mustEdge(t, g, &graph.Edge{From: prev, To: graph.ReceiverID, Format: media.Opaque(n + 1), BandwidthKbps: 2200})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != n+2 {
		t.Fatalf("path length = %d, want %d", len(res.Path), n+2)
	}
	// Bottleneck is the receiver edge: 2200 kbps → 22 fps.
	if math.Abs(res.Params.Get(media.ParamFrameRate)-22) > 1e-6 {
		t.Errorf("fps = %v, want 22", res.Params.Get(media.ParamFrameRate))
	}
	if res.Cost != n {
		t.Errorf("Cost = %v, want %d", res.Cost, n)
	}
}

func TestSelectSatisfactionMonotoneAlongPath(t *testing.T) {
	g := chainGraph(t, 2000, 1000)
	cfg := fpsConfig()
	cfg.Trace = true
	res, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, round := range res.Rounds {
		if round.Satisfaction > prev+1e-9 {
			t.Errorf("greedy selection order must be non-increasing: round %d sat %v after %v",
				round.Number, round.Satisfaction, prev)
		}
		prev = round.Satisfaction
	}
}

func TestDisplayConventions(t *testing.T) {
	if DisplayFPS(19.85) != 20 || DisplayFPS(23.09) != 23 || DisplayFPS(27.2) != 27 {
		t.Error("DisplayFPS must round to nearest")
	}
	cases := []struct {
		sat  float64
		want string
	}{
		{1.0, "1.00"},
		{0.9067, "0.90"},
		{0.76967, "0.76"},
		{2.0 / 3.0, "0.66"},
		{0.9, "0.90"},
	}
	for _, c := range cases {
		if got := DisplaySat(c.sat); got != c.want {
			t.Errorf("DisplaySat(%v) = %q, want %q", c.sat, got, c.want)
		}
	}
}

func TestPathString(t *testing.T) {
	got := PathString([]graph.NodeID{graph.SenderID, "t7", graph.ReceiverID})
	if got != "sender,T7,receiver" {
		t.Errorf("PathString = %q", got)
	}
}

func TestTraceTableRenders(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	cfg := fpsConfig()
	cfg.Trace = true
	res, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := res.TraceTable()
	for _, want := range []string{"Round", "Considered Set (VT)", "T1", "receiver", "1.00"} {
		if !contains(table, want) {
			t.Errorf("trace table missing %q:\n%s", want, table)
		}
	}
	if res.Summary() == "" {
		t.Error("Summary should not be empty")
	}
	fail := &Result{}
	if fail.Summary() != "no adaptation chain found" {
		t.Errorf("failure summary = %q", fail.Summary())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSelectHeapMatchesScan(t *testing.T) {
	g := chainGraph(t, 3000, 1500)
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: graph.ReceiverID, Format: media.Opaque(1),
		BandwidthKbps: 900, SourceParams: media.Params{media.ParamFrameRate: 30}})
	scanCfg := fpsConfig()
	scanCfg.Scan = true
	heapCfg := fpsConfig()
	scan, err := Select(g, scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	heapRes, err := Select(g, heapCfg)
	if err != nil {
		t.Fatal(err)
	}
	if PathString(scan.Path) != PathString(heapRes.Path) {
		t.Errorf("heap path %s != scan path %s", PathString(heapRes.Path), PathString(scan.Path))
	}
	if math.Abs(scan.Satisfaction-heapRes.Satisfaction) > 1e-12 {
		t.Errorf("heap sat %v != scan sat %v", heapRes.Satisfaction, scan.Satisfaction)
	}
}

func TestSelectHeapNoChain(t *testing.T) {
	g := graph.NewGraph("s", "r")
	t1 := service.FormatConverter("t1", media.Opaque(1), media.Opaque(99))
	if err := g.AddService(t1); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, &graph.Edge{From: graph.SenderID, To: "t1", Format: media.Opaque(1),
		BandwidthKbps: 1000, SourceParams: media.Params{media.ParamFrameRate: 30}})
	cfg := fpsConfig()
	if _, err := Select(g, cfg); !errors.Is(err, ErrNoChain) {
		t.Errorf("heap variant should also fail with ErrNoChain, got %v", err)
	}
}

func TestSelectHostCPUConstrains(t *testing.T) {
	// The converter costs 0.5 MIPS per kbps; its host has 800 MIPS, so
	// it can trans-code at most 1600 kbps (16 fps) even though the
	// network affords 30 fps.
	g := chainGraph(t, 3000, 3000)
	n, _ := g.Node("t1")
	n.Service.CPUPerKbps = 0.5
	n.Service.Host = "p1"
	n.Host = "p1"
	g.SetHostResources("p1", graph.HostResources{CPUMips: 800, MemoryMB: 512})
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.Get(media.ParamFrameRate); math.Abs(got-16) > 0.01 {
		t.Errorf("CPU-capped fps = %v, want 16", got)
	}
}

func TestSelectHostMemoryExcludesService(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	n, _ := g.Node("t1")
	n.Service.MemoryMB = 128
	n.Service.Host = "p1"
	n.Host = "p1"
	g.SetHostResources("p1", graph.HostResources{CPUMips: 1000, MemoryMB: 64})
	_, err := Select(g, fpsConfig())
	if !errors.Is(err, ErrNoChain) {
		t.Errorf("memory-starved host should exclude the only chain, got %v", err)
	}
}

func TestSelectUndeclaredHostUnconstrained(t *testing.T) {
	g := chainGraph(t, 3000, 3000)
	n, _ := g.Node("t1")
	n.Service.CPUPerKbps = 100 // enormous demand, but no host declared
	res, err := Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfaction != 1 {
		t.Errorf("undeclared host must be unconstrained, sat = %v", res.Satisfaction)
	}
}
