// Package core implements the paper's primary contribution: the QoS
// selection algorithm of Section 4.4 (Figure 4).
//
// The algorithm finds the chain of trans-coding services from the sender
// to the receiver that maximizes the user's satisfaction with the
// delivered content. It is a greedy best-first expansion — Dijkstra with
// satisfaction as the (maximized) label — over the adaptation graph. Two
// sets drive it: VT, the already-considered services, and CS, the
// candidate services reachable from VT. Each iteration moves the
// highest-satisfaction candidate into VT and relaxes its neighbors,
// stopping when the receiver is selected or CS empties (failure).
//
// Because every trans-coding service can only reduce quality (Section
// 4.4's optimality argument, Figure 5), satisfaction is non-increasing
// along any path, which makes the greedy expansion return the true
// optimum; the property tests in this package and the exhaustive baseline
// in internal/baseline verify this.
//
// The implementation works on the graph's interned vertex and format
// indices: per-vertex state lives in flat slices, the acyclicity rule's
// format set is an immutable bitset (formatMask), labels come from a
// bump arena, and the per-relaxation optimization reuses scratch buffers
// (edgeEvaluator). The equivalence tests in equivalence_test.go pin the
// results — including tie-breaking — to a direct transliteration of the
// Figure 4 pseudocode.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
	"qoschain/internal/trace"
)

// ErrNoChain is returned when the receiver cannot be reached through any
// trans-coding path (Figure 4, Step 3: TERMINATE(FAILURE)).
var ErrNoChain = errors.New("core: no adaptation chain from sender to receiver")

// ErrBelowFloor is returned when a chain exists but even the best one
// falls below Config.SatisfactionFloor. The Result is still fully
// populated (Found, path, params, satisfaction) so callers that prefer a
// degraded chain over none — the session failover path — can adopt it
// deliberately.
var ErrBelowFloor = errors.New("core: best chain falls below the satisfaction floor")

// Config parameterizes one selection run.
type Config struct {
	// Profile is the user's satisfaction profile — the optimization
	// objective.
	Profile satisfaction.Profile
	// Bitrate converts QoS parameters into required bandwidth
	// (Equation 2's bandwidth_requirement). Nil uses
	// media.DefaultBitrate.
	Bitrate media.BitrateModel
	// Budget is the user's monetary budget for the chain (Figure 4's
	// user_budget); <= 0 means unlimited.
	Budget float64
	// ReceiverCaps bounds the QoS parameters the receiving device can
	// render (screen resolution, colour depth); nil imposes no bound.
	ReceiverCaps media.Params
	// Trace records the per-round state (Table 1) when true.
	Trace bool
	// SatisfactionFloor is the minimum acceptable total satisfaction for
	// a chain (a QoS guarantee): when the best chain scores below it,
	// Select returns the chain together with ErrBelowFloor. 0 disables
	// the floor. Because the greedy expansion pops the receiver at the
	// global optimum, the check is exact.
	SatisfactionFloor float64
	// Scan selects candidates with the linear scan Figure 4 implies
	// instead of the default priority queue (lazy deletion). Results
	// are identical (same tie-breaking); the ablation benchmark
	// compares the two on large graphs.
	Scan bool
	// UseHeap is deprecated: the priority queue is now the default, so
	// the field is ignored. Set Scan to force the linear scan.
	UseHeap bool
}

// Result reports the selected chain.
type Result struct {
	// Found is false when no chain exists (the result still carries the
	// trace rounds explored before failure).
	Found bool
	// Path is the vertex sequence sender … receiver.
	Path []graph.NodeID
	// Formats are the media formats flowing over each edge of Path
	// (len(Path)-1 entries).
	Formats []media.Format
	// Params are the QoS parameter values delivered to the receiver.
	Params media.Params
	// Satisfaction is the user's satisfaction with the delivered
	// content — the value the algorithm maximized.
	Satisfaction float64
	// Cost is the accumulated monetary cost of the chain.
	Cost float64
	// Expanded counts the vertices moved into VT (algorithm work).
	Expanded int
	// Rounds is the per-iteration trace (only when Config.Trace).
	Rounds []Round
}

// Round captures one iteration of the algorithm in the shape of Table 1.
type Round struct {
	// Number is the 1-based iteration index.
	Number int
	// Considered is VT at the start of the round, in insertion order.
	Considered []graph.NodeID
	// Candidates is CS at the start of the round, naturally sorted with
	// the receiver last.
	Candidates []graph.NodeID
	// Selected is the service chosen this round.
	Selected graph.NodeID
	// Path is the current best path from the sender to Selected.
	Path []graph.NodeID
	// Params are the QoS parameters deliverable at Selected.
	Params media.Params
	// Satisfaction is Selected's label value.
	Satisfaction float64
}

// label is the best-known way to reach a vertex. parent is the interned
// index of the upstream vertex; formats is the bitset of interned format
// indices used along the path (acyclicity rule).
type label struct {
	sat     float64
	params  media.Params
	parent  int32
	edge    *graph.Edge
	cost    float64
	formats formatMask
	seq     int32 // recency for deterministic tie-breaks
}

// ErrAborted is returned when the caller's context expired or was
// canceled mid-selection (deadline propagation): the work was shed to
// honor the request's remaining budget. It always arrives wrapped
// together with the context's own error, so both
// errors.Is(err, ErrAborted) and errors.Is(err, context.DeadlineExceeded)
// work.
var ErrAborted = errors.New("core: selection aborted")

// Select runs the QoS selection algorithm on the adaptation graph.
// On failure it returns a non-nil Result (carrying the explored trace)
// together with ErrNoChain.
func Select(g *graph.Graph, cfg Config) (*Result, error) {
	return SelectCtx(context.Background(), g, cfg)
}

// SelectCtx is Select under a context: the expansion loop checks the
// context once per round and aborts with ErrAborted (wrapping the
// context's error) when the deadline passes or the caller cancels, so
// a request whose budget ran out stops consuming planner time. The
// per-round check is one channel poll — negligible against a round's
// relaxation work.
func SelectCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if len(cfg.Profile.Functions) == 0 {
		return nil, fmt.Errorf("core: config has an empty satisfaction profile")
	}
	done := ctx.Done()

	// One whole-selection span whenever the request carries a trace; the
	// per-round spans below additionally require cfg.Trace so the
	// default hot path stays at a single span per selection.
	tr := trace.FromContext(ctx)
	var selSpan *trace.Span
	if tr != nil {
		selSpan = tr.StartSpan("core.select")
	}
	traceRounds := cfg.Trace && tr != nil
	var roundSpan *trace.Span

	n := g.NodeIndexCount()
	labels := make([]*label, n)   // CS: candidate labels, indexed by vertex
	expanded := make([]*label, n) // VT labels, for reconstruction
	inVT := make([]bool, n)
	numCandidates := 0
	useHeap := !cfg.Scan
	var candidates candidateHeap
	var larena labelArena
	var warena wordArena
	extWords := extWordsFor(g.FormatCount())
	ev := newEdgeEvaluator(g, &cfg)

	vtOrder := []graph.NodeID{graph.SenderID}
	inVT[graph.SenderIndex] = true
	var seq int32

	res := &Result{}

	// relax recomputes the label of e.To through e and keeps it when it
	// beats the current one (Figure 4 Steps 2 and 8, with Equation 2 as
	// the per-candidate optimization).
	relax := func(from int32, e *graph.Edge) {
		to := e.ToIndex()
		if inVT[to] {
			return
		}
		var upstreamParams media.Params
		var upstreamCost float64
		var upstreamFormats formatMask
		if from == graph.SenderIndex {
			upstreamParams = e.SourceParams
		} else {
			ul := expanded[from]
			if ul == nil {
				return
			}
			upstreamParams = ul.params
			upstreamCost = ul.cost
			upstreamFormats = ul.formats
		}
		// Distinct-format acyclicity rule (Section 4.2): a format may
		// not repeat along a path.
		fIdx := e.FormatIndex()
		if upstreamFormats.has(fIdx) {
			return
		}

		// Per-candidate optimization under the Equation 2 bandwidth
		// constraint and the budget (Figure 4 Step 2).
		params, sat, cost, ok := ev.eval(upstreamParams, upstreamCost, e)
		if !ok {
			return
		}
		cur := labels[to]
		if cur != nil && sat <= cur.sat {
			return
		}
		// Persist the evaluator's scratch params, recycling the map of
		// the label being defeated (it is unreachable once replaced —
		// stale heap entries never read params).
		var kept media.Params
		if cur != nil {
			kept = cur.params
			clear(kept)
			for k, v := range params {
				kept[k] = v
			}
		} else {
			kept = params.Clone()
			numCandidates++
		}
		seq++
		l := larena.alloc()
		*l = label{
			sat:     sat,
			params:  kept,
			parent:  from,
			edge:    e,
			cost:    cost,
			formats: upstreamFormats.with(fIdx, &warena, extWords),
			seq:     seq,
		}
		labels[to] = l
		if useHeap {
			candidates.push(heapEntry{idx: int32(to), l: l})
		}
	}

	// Step 1–2: seed CS with the sender's neighbors.
	for _, e := range g.OutAt(graph.SenderIndex) {
		relax(graph.SenderIndex, e)
	}

	round := 0
	for {
		round++
		if traceRounds {
			roundSpan = tr.StartSpan("select.round", trace.Int("round", round))
		}
		if done != nil {
			select {
			case <-done:
				res.Found = false
				roundSpan.End(trace.Str("outcome", "aborted"))
				selSpan.End(trace.Int("rounds", round-1), trace.Str("outcome", "aborted"))
				return res, fmt.Errorf("%w after %d rounds: %w", ErrAborted, round-1, ctx.Err())
			default:
			}
		}
		// Step 3: no candidates left → failure.
		if numCandidates == 0 {
			res.Found = false
			roundSpan.End(trace.Str("outcome", "no_chain"))
			selSpan.End(trace.Int("rounds", round-1), trace.Str("outcome", "no_chain"))
			return res, fmt.Errorf("%w after %d rounds", ErrNoChain, round-1)
		}

		// Step 4: select the candidate with the highest satisfaction.
		// Ties break toward the most recently updated label, then by
		// natural ID order, keeping runs deterministic. The heap
		// variant pops lazily, skipping entries superseded by a later
		// relaxation; because each label carries a unique seq,
		// (sat, seq) is a total order and both variants pick the same
		// candidate.
		best := int32(-1)
		var bestL *label
		if useHeap {
			for candidates.len() > 0 {
				e := candidates.pop()
				if labels[e.idx] == e.l {
					best, bestL = e.idx, e.l
					break
				}
			}
		} else {
			for i, l := range labels {
				if l == nil {
					continue
				}
				if bestL == nil || l.sat > bestL.sat ||
					(l.sat == bestL.sat && (l.seq > bestL.seq ||
						(l.seq == bestL.seq && graph.LessNatural(g.NodeIDAt(i), g.NodeIDAt(int(best)))))) {
					best, bestL = int32(i), l
				}
			}
		}
		if bestL == nil {
			// Heap exhausted by stale entries — equivalent to empty CS.
			res.Found = false
			roundSpan.End(trace.Str("outcome", "no_chain"))
			selSpan.End(trace.Int("rounds", round-1), trace.Str("outcome", "no_chain"))
			return res, fmt.Errorf("%w after %d rounds", ErrNoChain, round-1)
		}

		if cfg.Trace {
			path, err := pathTo(best, bestL, expanded, g)
			if err != nil {
				roundSpan.End(trace.Str("outcome", "error"))
				selSpan.End(trace.Str("outcome", "error"))
				return nil, err
			}
			res.Rounds = append(res.Rounds, Round{
				Number:       round,
				Considered:   append([]graph.NodeID(nil), vtOrder...),
				Candidates:   candidateIDs(labels, g),
				Selected:     g.NodeIDAt(int(best)),
				Path:         path,
				Params:       bestL.params.Clone(),
				Satisfaction: bestL.sat,
			})
		}

		// Step 4–5: move the selection from CS to VT.
		labels[best] = nil
		numCandidates--
		inVT[best] = true
		vtOrder = append(vtOrder, g.NodeIDAt(int(best)))
		res.Expanded++

		// Step 7: receiver selected → reconstruct and report.
		expanded[best] = bestL
		if best == graph.ReceiverIndex {
			res.Found = true
			res.Satisfaction = bestL.sat
			res.Params = bestL.params
			res.Cost = bestL.cost
			res.Path, res.Formats = reconstruct(best, bestL, expanded, g)
			roundSpan.End(trace.Str("selected", string(graph.ReceiverID)))
			if cfg.SatisfactionFloor > 0 && res.Satisfaction < cfg.SatisfactionFloor {
				selSpan.End(trace.Int("rounds", round), trace.Int("expanded", res.Expanded),
					trace.Str("outcome", "below_floor"))
				return res, fmt.Errorf("%w: %.3f < %.3f",
					ErrBelowFloor, res.Satisfaction, cfg.SatisfactionFloor)
			}
			selSpan.End(trace.Int("rounds", round), trace.Int("expanded", res.Expanded),
				trace.Str("outcome", "found"))
			return res, nil
		}

		// Step 8: relax the neighbors of the selected service.
		for _, e := range g.OutAt(int(best)) {
			relax(best, e)
		}
		if traceRounds {
			roundSpan.End(trace.Str("selected", string(g.NodeIDAt(int(best)))))
		}
	}
}

// candidateIDs returns CS sorted naturally with the receiver last.
func candidateIDs(labels []*label, g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(labels))
	hasReceiver := false
	for i, l := range labels {
		if l == nil {
			continue
		}
		if i == graph.ReceiverIndex {
			hasReceiver = true
			continue
		}
		out = append(out, g.NodeIDAt(i))
	}
	sort.Slice(out, func(i, j int) bool { return graph.LessNatural(out[i], out[j]) })
	if hasReceiver {
		out = append(out, graph.ReceiverID)
	}
	return out
}

// pathTo reconstructs the current best path to a candidate whose label is
// l, walking parents through the expanded (VT) labels. Every parent on
// the walk must be in VT — relaxation only ever records expanded parents
// — so a missing parent label is an internal inconsistency and is
// reported as an error rather than silently truncating the path.
func pathTo(idx int32, l *label, expanded []*label, g *graph.Graph) ([]graph.NodeID, error) {
	rev := []graph.NodeID{g.NodeIDAt(int(idx))}
	cur := l.parent
	for cur != graph.SenderIndex {
		rev = append(rev, g.NodeIDAt(int(cur)))
		pl := expanded[cur]
		if pl == nil {
			return nil, fmt.Errorf("core: inconsistent trace path to %s: parent %s has no expanded label",
				g.NodeIDAt(int(idx)), g.NodeIDAt(int(cur)))
		}
		cur = pl.parent
	}
	rev = append(rev, graph.SenderID)
	out := make([]graph.NodeID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out, nil
}

// reconstruct follows parents from the receiver back to the sender
// (Figure 4 Step 10) and returns the path plus the per-edge formats.
func reconstruct(idx int32, l *label, expanded []*label, g *graph.Graph) ([]graph.NodeID, []media.Format) {
	var revPath []graph.NodeID
	var revFormats []media.Format
	cur, curL := idx, l
	for curL != nil {
		revPath = append(revPath, g.NodeIDAt(int(cur)))
		revFormats = append(revFormats, curL.edge.Format)
		cur = curL.parent
		if cur == graph.SenderIndex {
			break
		}
		curL = expanded[cur]
	}
	revPath = append(revPath, graph.SenderID)
	path := make([]graph.NodeID, 0, len(revPath))
	for i := len(revPath) - 1; i >= 0; i-- {
		path = append(path, revPath[i])
	}
	formats := make([]media.Format, 0, len(revFormats))
	for i := len(revFormats) - 1; i >= 0; i-- {
		formats = append(formats, revFormats[i])
	}
	return path, formats
}
