package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"qoschain/internal/graph"
)

// BatchResult is the outcome of one entry of a SelectBatch call: the
// selected chain or the per-entry failure (e.g. ErrNoChain). Entries are
// independent — one receiver failing does not affect the others.
type BatchResult struct {
	Result *Result
	Err    error
}

// SelectBatch plans many receiver configurations against one shared
// adaptation graph, fanning the work out over a worker pool bounded by
// runtime.GOMAXPROCS. Results are returned in input order.
//
// Select never mutates the graph, so all workers read the same instance;
// the caller must not modify the graph (or the overlay feeding it)
// concurrently. Each worker builds its own evaluator scratch, so per-run
// allocation stays flat as the batch grows.
func SelectBatch(g *graph.Graph, cfgs []Config) []BatchResult {
	return SelectBatchCtx(context.Background(), g, cfgs)
}

// SelectBatchCtx is SelectBatch under a context (deadline propagation):
// entries not yet started when the context expires are marked aborted
// without running, and in-flight selections stop at their next round
// check. The batch still returns one BatchResult per entry, in order.
func SelectBatchCtx(ctx context.Context, g *graph.Graph, cfgs []Config) []BatchResult {
	out := make([]BatchResult, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: fmt.Errorf("%w before starting: %w", ErrAborted, err)}
					continue
				}
				r, err := SelectCtx(ctx, g, cfgs[i])
				out[i] = BatchResult{Result: r, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
