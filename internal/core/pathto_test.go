package core

import (
	"testing"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/service"
)

// TestPathToReportsInconsistency covers the trace-path reconstruction
// invariant: a candidate whose parent chain is broken (no expanded label)
// must surface an error instead of silently emitting a truncated path
// that skips straight to the sender.
func TestPathToReportsInconsistency(t *testing.T) {
	g := graph.NewGraph("sender", "receiver")
	for _, id := range []string{"a", "b"} {
		if err := g.AddService(&service.Service{
			ID:      service.ID(id),
			Inputs:  []media.Format{media.Opaque(1)},
			Outputs: []media.Format{media.Opaque(2)},
			Host:    id,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ai, ok := g.NodeIndex(graph.NodeID("a"))
	if !ok {
		t.Fatal("a not interned")
	}
	bi, ok := g.NodeIndex(graph.NodeID("b"))
	if !ok {
		t.Fatal("b not interned")
	}

	expanded := make([]*label, g.NodeIndexCount())
	l := &label{parent: int32(ai)}

	if _, err := pathTo(int32(bi), l, expanded, g); err == nil {
		t.Fatal("pathTo with a missing parent label should error, got nil")
	}

	expanded[ai] = &label{parent: graph.SenderIndex}
	path, err := pathTo(int32(bi), l, expanded, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := PathString(path); got != "sender,a,b" {
		t.Errorf("path = %s, want sender,a,b", got)
	}
}
