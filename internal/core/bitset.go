package core

// The distinct-format acyclicity rule (Section 4.2) needs a per-label set
// of the formats already used along the path. The seed implementation
// copied a map[media.Format]bool on every relaxation, which dominated the
// allocation profile on large graphs. Formats are interned to dense
// indices at graph-build time (graph.Graph.FormatIndex), so the set
// becomes an immutable bitset: a single inline uint64 for graphs with up
// to 64 distinct formats, extended by arena-allocated overflow words
// beyond that.

// formatMask is an immutable set of interned format indices. The zero
// value is the empty set. Copying the struct shares the overflow words,
// which is safe because masks are never mutated in place — with() returns
// a derived mask.
type formatMask struct {
	lo  uint64   // formats 0..63
	ext []uint64 // formats 64.., shared between derived masks
}

// has reports whether format index i is in the set.
func (m formatMask) has(i int) bool {
	if i < 64 {
		return m.lo&(1<<uint(i)) != 0
	}
	w := (i - 64) >> 6
	if w >= len(m.ext) {
		return false
	}
	return m.ext[w]&(1<<uint((i-64)&63)) != 0
}

// with returns m ∪ {i}. Overflow words are allocated from the arena
// (extWords is the graph-wide overflow word count, 0 for ≤64 formats).
func (m formatMask) with(i int, arena *wordArena, extWords int) formatMask {
	if i < 64 {
		m.lo |= 1 << uint(i)
		return m
	}
	ext := arena.alloc(extWords)
	copy(ext, m.ext)
	ext[(i-64)>>6] |= 1 << uint((i-64)&63)
	m.ext = ext
	return m
}

// extWordsFor returns the number of overflow words a graph with
// formatCount distinct formats needs.
func extWordsFor(formatCount int) int {
	if formatCount <= 64 {
		return 0
	}
	return (formatCount - 64 + 63) / 64
}

// wordArena bump-allocates overflow word slices in large slabs so that
// graphs with >64 formats pay one slab allocation per ~1024 masks instead
// of one per relaxation.
type wordArena struct {
	slab []uint64
}

func (a *wordArena) alloc(words int) []uint64 {
	if words == 0 {
		return nil
	}
	if len(a.slab) < words {
		n := 1024
		if n < words {
			n = words
		}
		a.slab = make([]uint64, n)
	}
	s := a.slab[:words:words]
	a.slab = a.slab[words:]
	return s
}

// labelArena bump-allocates labels in chunks. Labels live until Select
// returns (they back the expanded set and path reconstruction), so the
// arena never frees individually — dropping the arena frees everything.
type labelArena struct {
	chunk []label
	used  int
}

const labelChunkSize = 256

func (a *labelArena) alloc() *label {
	if a.used == len(a.chunk) {
		a.chunk = make([]label, labelChunkSize)
		a.used = 0
	}
	l := &a.chunk[a.used]
	a.used++
	return l
}
