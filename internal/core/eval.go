package core

import (
	"math"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// edgeEvaluator runs the per-candidate optimization of Figure 4 Steps 2/8
// with all scratch state reused across calls. Select performs one
// evaluation per relaxation; the seed implementation's per-call map
// allocations (the caps clone plus Profile.Optimize's internals)
// dominated its allocation profile.
//
// Not safe for concurrent use; each Select run builds its own.
type edgeEvaluator struct {
	g    *graph.Graph
	cfg  *Config
	opt  *satisfaction.Optimizer
	caps media.Params // scratch, rebuilt per eval
}

func newEdgeEvaluator(g *graph.Graph, cfg *Config) *edgeEvaluator {
	return &edgeEvaluator{
		g:    g,
		cfg:  cfg,
		opt:  satisfaction.NewOptimizer(cfg.Profile),
		caps: make(media.Params, 8),
	}
}

// eval computes the outcome of sending the stream over edge e given the
// QoS parameters and accumulated cost at the upstream vertex. The
// returned params alias the evaluator's scratch and are only valid until
// the next eval call — Clone to keep them. The arithmetic matches
// EvalEdge exactly.
func (ev *edgeEvaluator) eval(upstreamParams media.Params, upstreamCost float64, e *graph.Edge) (params media.Params, sat, cost float64, ok bool) {
	node, exists := ev.g.Node(e.To)
	if !exists {
		return nil, 0, 0, false
	}
	caps := ev.caps
	clear(caps)
	for k, v := range upstreamParams {
		caps[k] = v
	}
	// A parameter the user scores but the upstream stream does not
	// carry cannot be conjured by a trans-coder: cap it at zero. (The
	// content profile defines what the source offers; trans-coding only
	// reduces quality.)
	for _, name := range ev.opt.Params() {
		if _, present := caps[name]; !present {
			caps[name] = 0
		}
	}
	var domains map[media.Param]satisfaction.Domain
	cost = upstreamCost + e.TransmissionCost
	bandwidth := e.BandwidthKbps
	if math.IsInf(bandwidth, 1) {
		bandwidth = 0 // satisfaction.Request: <= 0 means unlimited
	}
	if node.Service != nil {
		minInto(caps, node.Service.Caps)
		domains = node.Service.Domains
		cost += node.Service.Cost
		// Host resource constraints (Section 4.3): the intermediary
		// must hold the service in memory, and its CPU bounds the input
		// bitrate it can trans-code — effectively a second bandwidth
		// cap on the edge.
		if host, declared := ev.g.HostResources(node.Host); declared {
			if node.Service.MemoryMB > host.MemoryMB {
				return nil, 0, 0, false
			}
			if node.Service.CPUPerKbps > 0 && host.CPUMips > 0 {
				cpuCap := host.CPUMips / node.Service.CPUPerKbps
				if bandwidth <= 0 || cpuCap < bandwidth {
					bandwidth = cpuCap
				}
			}
		}
	} else if node.IsReceiver() && ev.cfg.ReceiverCaps != nil {
		minInto(caps, ev.cfg.ReceiverCaps)
	}
	if ev.cfg.Budget > 0 && cost > ev.cfg.Budget {
		return nil, 0, 0, false
	}
	params, sat, ok = ev.opt.Optimize(satisfaction.Request{
		Caps:      caps,
		Domains:   domains,
		Bitrate:   ev.cfg.Bitrate,
		Bandwidth: bandwidth,
	})
	if !ok {
		return nil, 0, 0, false
	}
	return params, sat, cost, true
}

// minInto applies other as an element-wise cap on p, in place — the
// mutating equivalent of media.Params.Min.
func minInto(p, other media.Params) {
	for k, v := range p {
		if ov, ok := other[k]; ok && ov < v {
			p[k] = ov
		}
	}
}

// EvalEdge computes the outcome of sending the stream over edge e given
// the QoS parameters and accumulated cost at the upstream vertex: the
// parameters deliverable at e.To, the user's satisfaction with them, and
// the new accumulated cost. ok is false when the edge is unusable — the
// bandwidth cannot carry the stream at all, or the accumulated cost would
// exceed the budget.
//
// This is the per-candidate optimization of Figure 4 Steps 2/8 with the
// Equation 2 bandwidth constraint, shared by the greedy algorithm and by
// the baselines in internal/baseline. Select uses the scratch-reusing
// edgeEvaluator internally; this wrapper returns freshly allocated
// params.
func EvalEdge(g *graph.Graph, cfg Config, upstreamParams media.Params, upstreamCost float64, e *graph.Edge) (params media.Params, sat, cost float64, ok bool) {
	ev := newEdgeEvaluator(g, &cfg)
	params, sat, cost, ok = ev.eval(upstreamParams, upstreamCost, e)
	if ok {
		params = params.Clone()
	}
	return params, sat, cost, ok
}

// EvalPath evaluates a complete edge sequence from the sender: the first
// edge must leave the sender (its SourceParams seed the stream) and each
// subsequent edge must start where the previous ended. It returns the
// delivered parameters, satisfaction and cost at the end of the path.
// ok is false for an empty, discontinuous or unusable path, or one that
// repeats a format (the distinct-format acyclicity rule).
func EvalPath(g *graph.Graph, cfg Config, edges []*graph.Edge) (params media.Params, sat, cost float64, ok bool) {
	if len(edges) == 0 || edges[0].From != graph.SenderID {
		return nil, 0, 0, false
	}
	ev := newEdgeEvaluator(g, &cfg)
	seen := make(map[media.Format]bool, len(edges))
	params = edges[0].SourceParams
	at := graph.SenderID
	for _, e := range edges {
		if e.From != at || seen[e.Format] {
			return nil, 0, 0, false
		}
		seen[e.Format] = true
		params, sat, cost, ok = ev.eval(params, cost, e)
		if !ok {
			return nil, 0, 0, false
		}
		at = e.To
	}
	return params.Clone(), sat, cost, true
}
