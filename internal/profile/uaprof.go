package profile

import (
	"encoding/xml"
	"fmt"
	"io"

	"qoschain/internal/media"
)

// UAProf-style XML device profiles. Section 3 of the paper points at the
// WAP Forum's User Agent Profile as the standard carrier for device
// capabilities; this file supports a simplified XML schema in that
// spirit, so device descriptions can arrive from handset-style sources
// rather than JSON:
//
//	<DeviceProfile id="phone-1" class="phone">
//	  <Hardware cpuMips="150" memoryMB="16" screenWidth="176"
//	            screenHeight="144" colorDepth="12" speakers="1"/>
//	  <Software os="symbian">
//	    <Decoder>video/h263</Decoder>
//	    <Decoder>audio/gsm</Decoder>
//	  </Software>
//	</DeviceProfile>

// xmlDeviceProfile is the wire schema.
type xmlDeviceProfile struct {
	XMLName  xml.Name    `xml:"DeviceProfile"`
	ID       string      `xml:"id,attr"`
	Class    string      `xml:"class,attr"`
	Hardware xmlHardware `xml:"Hardware"`
	Software xmlSoftware `xml:"Software"`
}

type xmlHardware struct {
	CPUMips      float64 `xml:"cpuMips,attr"`
	MemoryMB     float64 `xml:"memoryMB,attr"`
	ScreenWidth  int     `xml:"screenWidth,attr"`
	ScreenHeight int     `xml:"screenHeight,attr"`
	ColorDepth   int     `xml:"colorDepth,attr"`
	Speakers     int     `xml:"speakers,attr"`
}

type xmlSoftware struct {
	OS       string   `xml:"os,attr"`
	Decoders []string `xml:"Decoder"`
}

// ParseDeviceXML reads a UAProf-style XML device profile and returns the
// validated Device.
func ParseDeviceXML(r io.Reader) (*Device, error) {
	var doc xmlDeviceProfile
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: parsing device XML: %w", err)
	}
	d := &Device{
		ID:    doc.ID,
		Class: DeviceClass(doc.Class),
		Hardware: Hardware{
			CPUMips:      doc.Hardware.CPUMips,
			MemoryMB:     doc.Hardware.MemoryMB,
			ScreenWidth:  doc.Hardware.ScreenWidth,
			ScreenHeight: doc.Hardware.ScreenHeight,
			ColorDepth:   doc.Hardware.ColorDepth,
			Speakers:     doc.Hardware.Speakers,
		},
		Software: Software{OS: doc.Software.OS},
	}
	for _, s := range doc.Software.Decoders {
		f, err := media.ParseFormat(s)
		if err != nil {
			return nil, fmt.Errorf("profile: device %s decoder: %w", doc.ID, err)
		}
		d.Software.Decoders = append(d.Software.Decoders, f)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteDeviceXML renders the device in the UAProf-style XML schema.
func WriteDeviceXML(w io.Writer, d *Device) error {
	if err := d.Validate(); err != nil {
		return err
	}
	doc := xmlDeviceProfile{
		ID:    d.ID,
		Class: string(d.Class),
		Hardware: xmlHardware{
			CPUMips:      d.Hardware.CPUMips,
			MemoryMB:     d.Hardware.MemoryMB,
			ScreenWidth:  d.Hardware.ScreenWidth,
			ScreenHeight: d.Hardware.ScreenHeight,
			ColorDepth:   d.Hardware.ColorDepth,
			Speakers:     d.Hardware.Speakers,
		},
		Software: xmlSoftware{OS: d.Software.OS},
	}
	for _, f := range d.Software.Decoders {
		doc.Software.Decoders = append(doc.Software.Decoders, f.String())
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("profile: encoding device XML: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
