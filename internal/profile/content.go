package profile

import (
	"fmt"

	"qoschain/internal/media"
)

// Content is the content profile of Section 3 (MPEG-7-like): descriptive
// metadata plus the stored variants of the media object. Each variant's
// format becomes one output link of the sender vertex in the adaptation
// graph (Section 4.2).
type Content struct {
	// ID identifies the content object.
	ID string `json:"id"`
	// Title is the human-readable title.
	Title string `json:"title,omitempty"`
	// Author and Production carry the authorship metadata MPEG-7
	// standardizes.
	Author     string `json:"author,omitempty"`
	Production string `json:"production,omitempty"`
	// Variants are the stored encodings of the object, each with the
	// maximum QoS parameters it can be served at.
	Variants []media.Descriptor `json:"variants"`
	// DurationSec is the play-out length for streamed media; 0 for
	// static objects (images, pages).
	DurationSec float64 `json:"durationSec,omitempty"`
}

// Validate checks the content profile.
func (c *Content) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("profile: content has empty ID")
	}
	if len(c.Variants) == 0 {
		return fmt.Errorf("profile: content %s has no variants", c.ID)
	}
	seen := make(map[media.Format]bool, len(c.Variants))
	for i, v := range c.Variants {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("profile: content %s variant %d: %w", c.ID, i, err)
		}
		if seen[v.Format] {
			return fmt.Errorf("profile: content %s has duplicate variant format %s", c.ID, v.Format)
		}
		seen[v.Format] = true
	}
	return nil
}

// Formats returns the set of variant formats — the sender's output links.
func (c *Content) Formats() media.FormatSet {
	s := make(media.FormatSet, len(c.Variants))
	for _, v := range c.Variants {
		s.Add(v.Format)
	}
	return s
}

// Variant returns the descriptor for the given format, if stored.
func (c *Content) Variant(f media.Format) (media.Descriptor, bool) {
	for _, v := range c.Variants {
		if v.Format == f {
			return v, true
		}
	}
	return media.Descriptor{}, false
}
