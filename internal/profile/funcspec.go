// Package profile implements the six information profiles of Section 3 of
// the paper — user, content, context, device, network and intermediary —
// as validated, JSON-serializable Go structures.
//
// The paper points at MPEG-7, MPEG-21 and UAProf as the description
// standards for these profiles; this package carries the same information
// in plain structs, which is what the graph builder and the QoS selection
// algorithm actually consume.
package profile

import (
	"fmt"

	"qoschain/internal/satisfaction"
)

// FuncSpec is the serializable description of a satisfaction function.
// It exists because satisfaction.Function is an interface and user
// profiles must round-trip through JSON.
type FuncSpec struct {
	// Shape selects the function family: "linear", "scurve",
	// "exponential", "step" or "piecewise".
	Shape string `json:"shape"`
	// Min and Ideal are the M and I bounds for the parametric shapes.
	Min   float64 `json:"min,omitempty"`
	Ideal float64 `json:"ideal,omitempty"`
	// K is the curvature of the exponential shape.
	K float64 `json:"k,omitempty"`
	// Thresholds/Levels describe the step shape.
	Thresholds []float64 `json:"thresholds,omitempty"`
	Levels     []float64 `json:"levels,omitempty"`
	// X/Y describe the piecewise-linear shape.
	X []float64 `json:"x,omitempty"`
	Y []float64 `json:"y,omitempty"`
	// Weight is the relative importance of the parameter in the
	// weighted combination ([29]); 0 means unweighted.
	Weight float64 `json:"weight,omitempty"`
}

// Function materializes the spec into a satisfaction.Function.
func (s FuncSpec) Function() (satisfaction.Function, error) {
	switch s.Shape {
	case "linear", "":
		return satisfaction.Linear{M: s.Min, I: s.Ideal}, nil
	case "scurve":
		return satisfaction.SCurve{M: s.Min, I: s.Ideal}, nil
	case "exponential":
		return satisfaction.Exponential{M: s.Min, I: s.Ideal, K: s.K}, nil
	case "step":
		return satisfaction.Step{Thresholds: s.Thresholds, Levels: s.Levels}, nil
	case "piecewise":
		pw := satisfaction.Piecewise{X: s.X, Y: s.Y}
		if err := pw.Validate(); err != nil {
			return nil, err
		}
		return pw, nil
	default:
		return nil, fmt.Errorf("profile: unknown satisfaction shape %q", s.Shape)
	}
}

// Validate materializes the function and checks it against the
// satisfaction.Function contract.
func (s FuncSpec) Validate() error {
	fn, err := s.Function()
	if err != nil {
		return err
	}
	if err := satisfaction.CheckMonotone(fn, 64); err != nil {
		return fmt.Errorf("profile: satisfaction spec (%s): %w", s.Shape, err)
	}
	if s.Weight < 0 {
		return fmt.Errorf("profile: negative weight %v", s.Weight)
	}
	return nil
}

// LinearSpec is a convenience constructor for the common linear shape.
func LinearSpec(min, ideal float64) FuncSpec {
	return FuncSpec{Shape: "linear", Min: min, Ideal: ideal}
}

// SCurveSpec is a convenience constructor for the Figure 1 S-shape.
func SCurveSpec(min, ideal float64) FuncSpec {
	return FuncSpec{Shape: "scurve", Min: min, Ideal: ideal}
}
