package profile

import (
	"encoding/json"
	"fmt"
	"io"
)

// Set bundles all six profiles describing one adaptation request: who is
// receiving (user, context, device), what is being delivered (content),
// and through what (network, intermediaries). It is the full input to
// graph construction and chain selection.
type Set struct {
	User           User           `json:"user"`
	Content        Content        `json:"content"`
	Context        Context        `json:"context,omitempty"`
	Device         Device         `json:"device"`
	Network        Network        `json:"network"`
	Intermediaries []Intermediary `json:"intermediaries"`
}

// Validate validates every member profile and cross-profile consistency:
// intermediary hosts must be distinct.
func (s *Set) Validate() error {
	if err := s.User.Validate(); err != nil {
		return err
	}
	if err := s.Content.Validate(); err != nil {
		return err
	}
	if err := s.Context.Validate(); err != nil {
		return err
	}
	if err := s.Device.Validate(); err != nil {
		return err
	}
	if err := s.Network.Validate(); err != nil {
		return err
	}
	hosts := make(map[string]bool, len(s.Intermediaries))
	for i := range s.Intermediaries {
		in := &s.Intermediaries[i]
		if err := in.Validate(); err != nil {
			return err
		}
		if hosts[in.Host] {
			return fmt.Errorf("profile: duplicate intermediary host %q", in.Host)
		}
		hosts[in.Host] = true
	}
	return nil
}

// Encode writes the set as indented JSON.
func (s *Set) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("profile: encoding set: %w", err)
	}
	return nil
}

// DecodeSet reads a JSON-encoded Set and validates it.
func DecodeSet(r io.Reader) (*Set, error) {
	var s Set
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("profile: decoding set: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
