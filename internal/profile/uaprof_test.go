package profile

import (
	"bytes"
	"strings"
	"testing"
)

const phoneXML = `<DeviceProfile id="phone-1" class="phone">
  <Hardware cpuMips="150" memoryMB="16" screenWidth="176" screenHeight="144" colorDepth="12" speakers="1"/>
  <Software os="symbian">
    <Decoder>video/h263</Decoder>
    <Decoder>audio/gsm</Decoder>
  </Software>
</DeviceProfile>`

func TestParseDeviceXML(t *testing.T) {
	d, err := ParseDeviceXML(strings.NewReader(phoneXML))
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "phone-1" || d.Class != ClassPhone {
		t.Errorf("identity = %s/%s", d.ID, d.Class)
	}
	if d.Hardware.ScreenWidth != 176 || d.Hardware.ColorDepth != 12 {
		t.Errorf("hardware = %+v", d.Hardware)
	}
	if len(d.Software.Decoders) != 2 || d.Software.Decoders[0].String() != "video/h263" {
		t.Errorf("decoders = %v", d.Software.Decoders)
	}
}

func TestParseDeviceXMLErrors(t *testing.T) {
	cases := []string{
		"not xml at all",
		`<DeviceProfile id="x"><Software><Decoder>bogus-format</Decoder></Software></DeviceProfile>`,
		`<DeviceProfile id=""><Software><Decoder>video/h263</Decoder></Software></DeviceProfile>`,
		`<DeviceProfile id="x"><Software/></DeviceProfile>`, // no decoders
	}
	for i, c := range cases {
		if _, err := ParseDeviceXML(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDeviceXMLRoundTrip(t *testing.T) {
	original, err := ParseDeviceXML(strings.NewReader(phoneXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDeviceXML(&buf, original); err != nil {
		t.Fatal(err)
	}
	again, err := ParseDeviceXML(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if again.ID != original.ID || again.Class != original.Class {
		t.Error("round trip lost identity")
	}
	if len(again.Software.Decoders) != len(original.Software.Decoders) {
		t.Error("round trip lost decoders")
	}
	if again.Hardware != original.Hardware {
		t.Errorf("round trip changed hardware: %+v vs %+v", again.Hardware, original.Hardware)
	}
}

func TestWriteDeviceXMLRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDeviceXML(&buf, &Device{ID: "x"}); err == nil {
		t.Error("invalid device must not serialize")
	}
}

const clipXML = `<ContentProfile id="clip-1" title="evening news" durationSec="120">
  <Author>newsroom</Author>
  <Variant format="video/mpeg1">
    <Param name="framerate" value="30"/>
    <Param name="resolution" value="300"/>
  </Variant>
  <Variant format="video/h261">
    <Param name="framerate" value="25"/>
  </Variant>
</ContentProfile>`

func TestParseContentXML(t *testing.T) {
	c, err := ParseContentXML(strings.NewReader(clipXML))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "clip-1" || c.Title != "evening news" || c.DurationSec != 120 {
		t.Errorf("identity = %+v", c)
	}
	if c.Author != "newsroom" {
		t.Errorf("author = %q", c.Author)
	}
	if len(c.Variants) != 2 {
		t.Fatalf("variants = %d", len(c.Variants))
	}
	if c.Variants[0].Params["framerate"] != 30 || c.Variants[0].Params["resolution"] != 300 {
		t.Errorf("variant 0 params = %v", c.Variants[0].Params)
	}
}

func TestParseContentXMLErrors(t *testing.T) {
	cases := []string{
		"garbage",
		`<ContentProfile id="x"><Variant format="bogus"/></ContentProfile>`,
		`<ContentProfile id=""><Variant format="video/mpeg1"/></ContentProfile>`,
		`<ContentProfile id="x"></ContentProfile>`, // no variants
	}
	for i, c := range cases {
		if _, err := ParseContentXML(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestContentXMLRoundTrip(t *testing.T) {
	original, err := ParseContentXML(strings.NewReader(clipXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContentXML(&buf, original); err != nil {
		t.Fatal(err)
	}
	again, err := ParseContentXML(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if again.ID != original.ID || len(again.Variants) != len(original.Variants) {
		t.Error("round trip lost structure")
	}
	for i := range again.Variants {
		if !again.Variants[i].Params.Equal(original.Variants[i].Params, 1e-9) {
			t.Errorf("variant %d params changed", i)
		}
	}
}

func TestWriteContentXMLRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContentXML(&buf, &Content{ID: "x"}); err == nil {
		t.Error("invalid content must not serialize")
	}
}
