package profile

import (
	"fmt"

	"qoschain/internal/service"
)

// Intermediary is the profile of an intermediary (proxy) host of
// Section 3: the trans-coding services it offers, each described with its
// input/output formats and resource needs, plus the host's own available
// resources for carrying the services out.
type Intermediary struct {
	// Host identifies the intermediary.
	Host string `json:"host"`
	// CPUMips is the processing capacity available for trans-coding.
	CPUMips float64 `json:"cpuMips"`
	// MemoryMB is the memory available for trans-coding.
	MemoryMB float64 `json:"memoryMB"`
	// Services are the trans-coding services this host advertises.
	Services []*service.Service `json:"services"`
}

// Validate checks the intermediary profile and stamps each service's Host
// field if unset; a service claiming a different host is an error.
func (in *Intermediary) Validate() error {
	if in.Host == "" {
		return fmt.Errorf("profile: intermediary with empty host")
	}
	if in.CPUMips < 0 || in.MemoryMB < 0 {
		return fmt.Errorf("profile: intermediary %s negative resources", in.Host)
	}
	seen := make(map[service.ID]bool, len(in.Services))
	for i, s := range in.Services {
		if s == nil {
			return fmt.Errorf("profile: intermediary %s service %d is nil", in.Host, i)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("profile: intermediary %s: %w", in.Host, err)
		}
		if s.Host == "" {
			s.Host = in.Host
		} else if s.Host != in.Host {
			return fmt.Errorf("profile: service %s claims host %q inside intermediary %q", s.ID, s.Host, in.Host)
		}
		if seen[s.ID] {
			return fmt.Errorf("profile: intermediary %s has duplicate service %s", in.Host, s.ID)
		}
		seen[s.ID] = true
		if s.MemoryMB > in.MemoryMB && in.MemoryMB > 0 {
			return fmt.Errorf("profile: service %s needs %v MB but host %s has %v MB", s.ID, s.MemoryMB, in.Host, in.MemoryMB)
		}
	}
	return nil
}

// CanRun reports whether the host has the memory to run the service and
// the CPU headroom to process a stream of the given input bitrate.
func (in *Intermediary) CanRun(s *service.Service, inputKbps float64) bool {
	if s.MemoryMB > in.MemoryMB {
		return false
	}
	return s.CPURequired(inputKbps) <= in.CPUMips
}
