package profile

import (
	"encoding/xml"
	"fmt"
	"io"

	"qoschain/internal/media"
)

// MPEG-7-style XML content profiles. Section 3 points at MPEG-7 (the
// "Multimedia Content Description Interface") as the standard carrier for
// content metadata; this file supports a simplified XML schema in that
// spirit:
//
//	<ContentProfile id="clip-1" title="evening news" durationSec="120">
//	  <Author>newsroom</Author>
//	  <Variant format="video/mpeg1">
//	    <Param name="framerate" value="30"/>
//	  </Variant>
//	</ContentProfile>

type xmlContentProfile struct {
	XMLName     xml.Name     `xml:"ContentProfile"`
	ID          string       `xml:"id,attr"`
	Title       string       `xml:"title,attr"`
	DurationSec float64      `xml:"durationSec,attr"`
	Author      string       `xml:"Author"`
	Production  string       `xml:"Production"`
	Variants    []xmlVariant `xml:"Variant"`
}

type xmlVariant struct {
	Format string     `xml:"format,attr"`
	Params []xmlParam `xml:"Param"`
}

type xmlParam struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// ParseContentXML reads an MPEG-7-style XML content profile and returns
// the validated Content.
func ParseContentXML(r io.Reader) (*Content, error) {
	var doc xmlContentProfile
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: parsing content XML: %w", err)
	}
	c := &Content{
		ID:          doc.ID,
		Title:       doc.Title,
		Author:      doc.Author,
		Production:  doc.Production,
		DurationSec: doc.DurationSec,
	}
	for _, v := range doc.Variants {
		f, err := media.ParseFormat(v.Format)
		if err != nil {
			return nil, fmt.Errorf("profile: content %s variant: %w", doc.ID, err)
		}
		params := make(media.Params, len(v.Params))
		for _, p := range v.Params {
			params[media.Param(p.Name)] = p.Value
		}
		c.Variants = append(c.Variants, media.Descriptor{Format: f, Params: params})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteContentXML renders the content profile in the MPEG-7-style XML
// schema.
func WriteContentXML(w io.Writer, c *Content) error {
	if err := c.Validate(); err != nil {
		return err
	}
	doc := xmlContentProfile{
		ID:          c.ID,
		Title:       c.Title,
		Author:      c.Author,
		Production:  c.Production,
		DurationSec: c.DurationSec,
	}
	for _, v := range c.Variants {
		xv := xmlVariant{Format: v.Format.String()}
		for _, name := range v.Params.Names() {
			xv.Params = append(xv.Params, xmlParam{Name: string(name), Value: v.Params[name]})
		}
		doc.Variants = append(doc.Variants, xv)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("profile: encoding content XML: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
