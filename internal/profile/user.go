package profile

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// ContactClass classifies whom the user is communicating with; Section 3
// motivates per-contact preferences (CD-quality audio for clients,
// telephony quality for colleagues).
type ContactClass string

// Common contact classes.
const (
	ContactAny       ContactClass = ""
	ContactClient    ContactClass = "client"
	ContactColleague ContactClass = "colleague"
	ContactFamily    ContactClass = "family"
)

// DropPolicy expresses the user's application-adaptation policy: the
// order in which media dimensions should be degraded when resources run
// short (Section 3's example drops audio quality of a sports clip before
// video quality).
type DropPolicy struct {
	// Order lists parameters from first-to-degrade to last-to-degrade.
	Order []media.Param `json:"order"`
}

// User is the user profile of Section 3: personal properties, per-contact
// QoS preferences expressed as satisfaction-function specs, adaptation
// policies and the budget the user will pay for trans-coding services.
type User struct {
	// Name identifies the user.
	Name string `json:"name"`
	// Preferences maps each scored QoS parameter to its satisfaction
	// spec for the default contact class.
	Preferences map[media.Param]FuncSpec `json:"preferences"`
	// ContactPreferences optionally overrides Preferences per contact
	// class.
	ContactPreferences map[ContactClass]map[media.Param]FuncSpec `json:"contactPreferences,omitempty"`
	// Policy is the degradation-order policy.
	Policy DropPolicy `json:"policy,omitempty"`
	// Budget is the money the user is willing to pay for the adaptation
	// chain (Figure 4's user_budget). Zero or negative means unlimited.
	Budget float64 `json:"budget,omitempty"`
}

// Validate checks every satisfaction spec in the profile.
func (u *User) Validate() error {
	if u.Name == "" {
		return fmt.Errorf("profile: user has empty name")
	}
	if len(u.Preferences) == 0 {
		return fmt.Errorf("profile: user %s has no preferences", u.Name)
	}
	for p, spec := range u.Preferences {
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("profile: user %s parameter %s: %w", u.Name, p, err)
		}
	}
	for class, prefs := range u.ContactPreferences {
		for p, spec := range prefs {
			if err := spec.Validate(); err != nil {
				return fmt.Errorf("profile: user %s contact %q parameter %s: %w", u.Name, class, p, err)
			}
		}
	}
	return nil
}

// SatisfactionProfile materializes the user's preferences for the given
// contact class into a satisfaction.Profile the optimizer can evaluate.
// Parameters overridden for the class replace the defaults; others are
// inherited.
func (u *User) SatisfactionProfile(class ContactClass) (satisfaction.Profile, error) {
	fns := make(map[media.Param]satisfaction.Function, len(u.Preferences))
	weights := make(map[media.Param]float64)
	add := func(p media.Param, spec FuncSpec) error {
		fn, err := spec.Function()
		if err != nil {
			return fmt.Errorf("profile: user %s parameter %s: %w", u.Name, p, err)
		}
		fns[p] = fn
		if spec.Weight > 0 {
			weights[p] = spec.Weight
		} else {
			weights[p] = 1
		}
		return nil
	}
	for p, spec := range u.Preferences {
		if err := add(p, spec); err != nil {
			return satisfaction.Profile{}, err
		}
	}
	if class != ContactAny {
		for p, spec := range u.ContactPreferences[class] {
			if err := add(p, spec); err != nil {
				return satisfaction.Profile{}, err
			}
		}
	}
	prof := satisfaction.Profile{Functions: fns}
	// Only attach weights when at least one differs from 1; the
	// unweighted geometric mean is the paper's base model.
	for _, w := range weights {
		if w != 1 {
			prof.Weights = weights
			break
		}
	}
	return prof, nil
}
