package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func sampleUser() User {
	return User{
		Name: "alice",
		Preferences: map[media.Param]FuncSpec{
			media.ParamFrameRate: LinearSpec(0, 30),
		},
		ContactPreferences: map[ContactClass]map[media.Param]FuncSpec{
			ContactClient: {media.ParamFrameRate: LinearSpec(10, 30)},
		},
		Budget: 100,
	}
}

func sampleContent() Content {
	return Content{
		ID:    "clip-1",
		Title: "news clip",
		Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			{Format: media.VideoH261, Params: media.Params{media.ParamFrameRate: 25}},
		},
		DurationSec: 120,
	}
}

func sampleDevice() Device {
	return Device{
		ID:    "phone-1",
		Class: ClassPhone,
		Hardware: Hardware{
			CPUMips: 200, MemoryMB: 64,
			ScreenWidth: 320, ScreenHeight: 240, ColorDepth: 16, Speakers: 1,
		},
		Software: Software{OS: "symbian", Decoders: []media.Format{media.VideoH263, media.AudioGSM}},
	}
}

func TestUserValidate(t *testing.T) {
	u := sampleUser()
	if err := u.Validate(); err != nil {
		t.Errorf("valid user rejected: %v", err)
	}
	if err := (&User{}).Validate(); err == nil {
		t.Error("empty user should fail")
	}
	if err := (&User{Name: "x"}).Validate(); err == nil {
		t.Error("user without preferences should fail")
	}
	bad := sampleUser()
	bad.Preferences[media.ParamAudioRate] = FuncSpec{Shape: "wiggly"}
	if err := bad.Validate(); err == nil {
		t.Error("bad preference spec should fail")
	}
	bad2 := sampleUser()
	bad2.ContactPreferences[ContactFamily] = map[media.Param]FuncSpec{
		media.ParamFrameRate: {Shape: "wiggly"},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("bad contact preference spec should fail")
	}
}

func TestUserSatisfactionProfile(t *testing.T) {
	u := sampleUser()
	prof, err := u.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	got := prof.Evaluate(media.Params{media.ParamFrameRate: 15})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("default profile Evaluate = %v, want 0.5", got)
	}
	// The client-class override raises the minimum to 10 fps.
	prof, err = u.SatisfactionProfile(ContactClient)
	if err != nil {
		t.Fatal(err)
	}
	got = prof.Evaluate(media.Params{media.ParamFrameRate: 15})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("client profile Evaluate = %v, want 0.25", got)
	}
}

func TestUserSatisfactionProfileWeighted(t *testing.T) {
	u := User{
		Name: "bob",
		Preferences: map[media.Param]FuncSpec{
			media.ParamFrameRate: {Shape: "linear", Min: 0, Ideal: 30, Weight: 2},
			media.ParamAudioRate: {Shape: "linear", Min: 0, Ideal: 44.1, Weight: 1},
		},
	}
	prof, err := u.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Weights == nil {
		t.Fatal("weights should be attached when any differs from 1")
	}
	if prof.Weights[media.ParamFrameRate] != 2 {
		t.Errorf("framerate weight = %v, want 2", prof.Weights[media.ParamFrameRate])
	}
}

func TestContentValidate(t *testing.T) {
	c := sampleContent()
	if err := c.Validate(); err != nil {
		t.Errorf("valid content rejected: %v", err)
	}
	if err := (&Content{}).Validate(); err == nil {
		t.Error("empty content should fail")
	}
	dup := sampleContent()
	dup.Variants = append(dup.Variants, dup.Variants[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate variant formats should fail")
	}
}

func TestContentFormatsAndVariant(t *testing.T) {
	c := sampleContent()
	fs := c.Formats()
	if !fs.Contains(media.VideoMPEG1) || !fs.Contains(media.VideoH261) {
		t.Error("Formats should contain both variants")
	}
	v, ok := c.Variant(media.VideoH261)
	if !ok || v.Params[media.ParamFrameRate] != 25 {
		t.Errorf("Variant lookup failed: %v %v", v, ok)
	}
	if _, ok := c.Variant(media.ImageGIF); ok {
		t.Error("absent variant should not be found")
	}
}

func TestDeviceValidate(t *testing.T) {
	d := sampleDevice()
	if err := d.Validate(); err != nil {
		t.Errorf("valid device rejected: %v", err)
	}
	if err := (&Device{ID: "x"}).Validate(); err == nil {
		t.Error("device without decoders should fail")
	}
	bad := sampleDevice()
	bad.Hardware.CPULoad = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("CPU load above 1 should fail")
	}
}

func TestDeviceDecodes(t *testing.T) {
	d := sampleDevice()
	if !d.Decodes(media.VideoH263) {
		t.Error("device should decode h263")
	}
	if d.Decodes(media.VideoMPEG2) {
		t.Error("device should not decode mpeg2")
	}
	if len(d.DecoderSet()) != 2 {
		t.Error("DecoderSet size mismatch")
	}
}

func TestDeviceRenderCaps(t *testing.T) {
	d := sampleDevice()
	caps := d.RenderCaps()
	if math.Abs(caps[media.ParamResolution]-76.8) > 1e-9 {
		t.Errorf("resolution cap = %v, want 76.8 kpx", caps[media.ParamResolution])
	}
	if caps[media.ParamColorDepth] != 16 {
		t.Errorf("colour cap = %v, want 16", caps[media.ParamColorDepth])
	}
	bare := Device{ID: "pager", Software: Software{Decoders: []media.Format{media.TextPlain}}}
	if len(bare.RenderCaps()) != 0 {
		t.Error("screenless device should impose no render caps")
	}
}

func TestContextValidateAndHeuristics(t *testing.T) {
	c := Context{Location: "office", Activity: "meeting", NoiseDb: 40, HourOfDay: 14}
	if err := c.Validate(); err != nil {
		t.Errorf("valid context rejected: %v", err)
	}
	if !c.AudioHostile() {
		t.Error("meeting context should be audio-hostile")
	}
	loud := Context{NoiseDb: 90}
	if !loud.AudioHostile() {
		t.Error("90 dB should be audio-hostile")
	}
	driving := Context{Activity: "driving"}
	if !driving.VideoHostile() {
		t.Error("driving should be video-hostile")
	}
	empty := Context{}
	if empty.AudioHostile() || empty.VideoHostile() {
		t.Error("empty context should be neutral")
	}
	for _, bad := range []Context{{IlluminationLux: -1}, {NoiseDb: -1}, {HourOfDay: 24}, {HourOfDay: -2}} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Errorf("context %+v should fail validation", bad)
		}
	}
}

func TestNetworkValidate(t *testing.T) {
	n := Network{Links: []Link{
		{From: "a", To: "b", BandwidthKbps: 1000, DelayMs: 10},
		{From: "b", To: "a", BandwidthKbps: 800},
	}}
	if err := n.Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	for i, bad := range []Network{
		{Links: []Link{{From: "", To: "b", BandwidthKbps: 1}}},
		{Links: []Link{{From: "a", To: "a", BandwidthKbps: 1}}},
		{Links: []Link{{From: "a", To: "b", BandwidthKbps: -1}}},
		{Links: []Link{{From: "a", To: "b", LossRate: 2}}},
		{Links: []Link{{From: "a", To: "b", DelayMs: -1}}},
		{Links: []Link{{From: "a", To: "b"}, {From: "a", To: "b"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad network %d should fail validation", i)
		}
	}
}

func TestNetworkBandwidthAndHosts(t *testing.T) {
	n := Network{Links: []Link{{From: "a", To: "b", BandwidthKbps: 1000}}}
	bw, ok := n.Bandwidth("a", "b")
	if !ok || bw != 1000 {
		t.Errorf("Bandwidth(a,b) = %v,%v", bw, ok)
	}
	if _, ok := n.Bandwidth("b", "a"); ok {
		t.Error("reverse direction should be absent")
	}
	hosts := n.Hosts()
	if !hosts["a"] || !hosts["b"] || len(hosts) != 2 {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestIntermediaryValidate(t *testing.T) {
	in := Intermediary{
		Host: "proxy-1", CPUMips: 1000, MemoryMB: 512,
		Services: []*service.Service{service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF)},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid intermediary rejected: %v", err)
	}
	if in.Services[0].Host != "proxy-1" {
		t.Error("Validate should stamp the host onto its services")
	}
	wrongHost := Intermediary{Host: "proxy-2", MemoryMB: 512,
		Services: []*service.Service{{ID: "x", Host: "other",
			Inputs: []media.Format{media.ImageJPEG}, Outputs: []media.Format{media.ImageGIF}}}}
	if err := wrongHost.Validate(); err == nil {
		t.Error("service claiming another host should fail")
	}
	dup := Intermediary{Host: "p", MemoryMB: 512, Services: []*service.Service{
		service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF),
		service.FormatConverter("c1", media.ImageGIF, media.ImagePNG),
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate service IDs should fail")
	}
	tooBig := Intermediary{Host: "p", MemoryMB: 8, Services: []*service.Service{
		service.KeyframeExtractor("k1", media.VideoMPEG1), // needs 64 MB
	}}
	if err := tooBig.Validate(); err == nil {
		t.Error("service larger than host memory should fail")
	}
}

func TestIntermediaryCanRun(t *testing.T) {
	in := Intermediary{Host: "p", CPUMips: 100, MemoryMB: 64}
	s := &service.Service{ID: "x", CPUPerKbps: 0.1, MemoryMB: 32,
		Inputs: []media.Format{media.ImageJPEG}, Outputs: []media.Format{media.ImageGIF}}
	if !in.CanRun(s, 500) { // needs 50 MIPS
		t.Error("should run within CPU budget")
	}
	if in.CanRun(s, 2000) { // needs 200 MIPS
		t.Error("should refuse beyond CPU budget")
	}
	s.MemoryMB = 128
	if in.CanRun(s, 1) {
		t.Error("should refuse beyond memory budget")
	}
}

func validSet() *Set {
	return &Set{
		User:    sampleUser(),
		Content: sampleContent(),
		Device:  sampleDevice(),
		Network: Network{Links: []Link{{From: "sender", To: "proxy-1", BandwidthKbps: 2000}}},
		Intermediaries: []Intermediary{{
			Host: "proxy-1", CPUMips: 1000, MemoryMB: 512,
			Services: []*service.Service{service.FormatConverter("c1", media.VideoMPEG1, media.VideoH263)},
		}},
	}
}

func TestSetValidate(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	dup := validSet()
	dup.Intermediaries = append(dup.Intermediaries, Intermediary{Host: "proxy-1"})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate intermediary hosts should fail")
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	s := validSet()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSet(&buf)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if got.User.Name != "alice" || got.Content.ID != "clip-1" || got.Device.ID != "phone-1" {
		t.Error("round trip lost identity fields")
	}
	if len(got.Intermediaries) != 1 || len(got.Intermediaries[0].Services) != 1 {
		t.Fatal("round trip lost intermediary services")
	}
	if got.Intermediaries[0].Services[0].ID != "c1" {
		t.Error("round trip lost service ID")
	}
	bw, ok := got.Network.Bandwidth("sender", "proxy-1")
	if !ok || bw != 2000 {
		t.Error("round trip lost network link")
	}
}

func TestDecodeSetRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSet(strings.NewReader(`{"bogus": 1}`))
	if err == nil {
		t.Error("unknown fields should be rejected")
	}
}

func TestDecodeSetRejectsInvalid(t *testing.T) {
	_, err := DecodeSet(strings.NewReader(`{}`))
	if err == nil {
		t.Error("empty set should fail validation")
	}
}

func TestApplyContextNeutral(t *testing.T) {
	u := sampleUser()
	prof, err := u.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	neutral := Context{}
	adjusted := ApplyContext(prof, &neutral)
	if adjusted.Weights != nil {
		t.Error("neutral context must leave the profile unweighted")
	}
	if ApplyContext(prof, nil).Weights != nil {
		t.Error("nil context must leave the profile unweighted")
	}
}

func TestApplyContextAudioHostile(t *testing.T) {
	u := User{
		Name: "u",
		Preferences: map[media.Param]FuncSpec{
			media.ParamFrameRate: LinearSpec(0, 30),
			media.ParamAudioRate: LinearSpec(0, 44.1),
		},
	}
	prof, err := u.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	meeting := Context{Activity: "meeting"}
	adjusted := ApplyContext(prof, &meeting)
	if adjusted.Weights[media.ParamAudioRate] != 0 {
		t.Error("audio parameters must be zero-weighted in a meeting")
	}
	if adjusted.Weights[media.ParamFrameRate] != 1 {
		t.Error("video parameters keep their weight")
	}
	// Bad audio no longer hurts the total.
	vals := media.Params{media.ParamFrameRate: 30, media.ParamAudioRate: 0}
	if got := adjusted.Evaluate(vals); got != 1 {
		t.Errorf("audio-hostile evaluation = %v, want 1", got)
	}
	if got := prof.Evaluate(vals); got != 0 {
		t.Errorf("unadjusted evaluation = %v, want 0", got)
	}
}

func TestApplyContextVideoHostile(t *testing.T) {
	u := User{
		Name: "u",
		Preferences: map[media.Param]FuncSpec{
			media.ParamFrameRate: LinearSpec(0, 30),
			media.ParamAudioRate: LinearSpec(0, 44.1),
		},
	}
	prof, err := u.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	driving := Context{Activity: "driving"}
	adjusted := ApplyContext(prof, &driving)
	if adjusted.Weights[media.ParamFrameRate] != 0 {
		t.Error("frame rate must be zero-weighted while driving")
	}
	vals := media.Params{media.ParamFrameRate: 0, media.ParamAudioRate: 44.1}
	if got := adjusted.Evaluate(vals); got != 1 {
		t.Errorf("video-hostile evaluation = %v, want 1", got)
	}
}

func TestApplyContextPreservesExistingWeights(t *testing.T) {
	weighted := User{
		Name: "u",
		Preferences: map[media.Param]FuncSpec{
			media.ParamFrameRate: {Shape: "linear", Min: 0, Ideal: 30, Weight: 3},
			media.ParamAudioRate: {Shape: "linear", Min: 0, Ideal: 44.1, Weight: 2},
		},
	}
	prof, err := weighted.SatisfactionProfile(ContactAny)
	if err != nil {
		t.Fatal(err)
	}
	adjusted := ApplyContext(prof, &Context{NoiseDb: 95})
	if adjusted.Weights[media.ParamFrameRate] != 3 {
		t.Errorf("existing weight must survive, got %v", adjusted.Weights[media.ParamFrameRate])
	}
	if adjusted.Weights[media.ParamAudioRate] != 0 {
		t.Error("audio must be zeroed in 95 dB noise")
	}
}
