package profile

import (
	"fmt"

	"qoschain/internal/media"
)

// DeviceClass is a coarse category of client devices, used by workload
// generators and examples. Section 1 spans the range from "a small
// single-task audio player to a complex multi-task desktop computer".
type DeviceClass string

// Common device classes circa the paper's era.
const (
	ClassDesktop   DeviceClass = "desktop"
	ClassLaptop    DeviceClass = "laptop"
	ClassPDA       DeviceClass = "pda"
	ClassPhone     DeviceClass = "phone"
	ClassSetTop    DeviceClass = "settop"
	ClassAudioOnly DeviceClass = "audioplayer"
	ClassTextPager DeviceClass = "pager"
)

// Hardware captures the hardware characteristics the device profile of
// Section 3 enumerates (UAProf / MPEG-21 DIA style).
type Hardware struct {
	// CPUMips is the processing power in MIPS.
	CPUMips float64 `json:"cpuMips"`
	// CPULoad is the current utilization in [0,1].
	CPULoad float64 `json:"cpuLoad,omitempty"`
	// MemoryMB is the available memory.
	MemoryMB float64 `json:"memoryMB"`
	// ScreenWidth/ScreenHeight are the display pixels; 0 for screenless
	// devices.
	ScreenWidth  int `json:"screenWidth,omitempty"`
	ScreenHeight int `json:"screenHeight,omitempty"`
	// ColorDepth is the display bits per pixel.
	ColorDepth int `json:"colorDepth,omitempty"`
	// Speakers is the number of audio output channels (0 = mute device).
	Speakers int `json:"speakers,omitempty"`
}

// ScreenKpx returns the display size in kilopixels, the unit of the
// resolution QoS parameter.
func (h Hardware) ScreenKpx() float64 {
	return float64(h.ScreenWidth) * float64(h.ScreenHeight) / 1000
}

// Software captures the software characteristics: platform and installed
// decoders.
type Software struct {
	// OS is the operating system vendor/version string.
	OS string `json:"os,omitempty"`
	// Decoders are the media formats the device can render — exactly
	// the input links of the receiver vertex (Section 4.2).
	Decoders []media.Format `json:"decoders"`
}

// Device is the device profile of Section 3.
type Device struct {
	// ID identifies the device.
	ID string `json:"id"`
	// Class is the coarse device category.
	Class DeviceClass `json:"class,omitempty"`
	// Hardware and Software describe the device's capabilities.
	Hardware Hardware `json:"hardware"`
	Software Software `json:"software"`
}

// Validate checks the device profile.
func (d *Device) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("profile: device has empty ID")
	}
	if len(d.Software.Decoders) == 0 {
		return fmt.Errorf("profile: device %s has no decoders", d.ID)
	}
	for i, f := range d.Software.Decoders {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("profile: device %s decoder %d: %w", d.ID, i, err)
		}
	}
	if d.Hardware.CPULoad < 0 || d.Hardware.CPULoad > 1 {
		return fmt.Errorf("profile: device %s CPU load %v outside [0,1]", d.ID, d.Hardware.CPULoad)
	}
	if d.Hardware.CPUMips < 0 || d.Hardware.MemoryMB < 0 {
		return fmt.Errorf("profile: device %s negative hardware resource", d.ID)
	}
	return nil
}

// Decodes reports whether the device can render format f.
func (d *Device) Decodes(f media.Format) bool {
	for _, dec := range d.Software.Decoders {
		if dec == f {
			return true
		}
	}
	return false
}

// DecoderSet returns the decoder formats as a set — the receiver's input
// links.
func (d *Device) DecoderSet() media.FormatSet {
	return media.NewFormatSet(d.Software.Decoders...)
}

// RenderCaps derives QoS parameter caps from the hardware: content cannot
// usefully exceed the screen's resolution or colour depth. Zero hardware
// fields impose no cap.
func (d *Device) RenderCaps() media.Params {
	caps := make(media.Params)
	if kpx := d.Hardware.ScreenKpx(); kpx > 0 {
		caps[media.ParamResolution] = kpx
	}
	if d.Hardware.ColorDepth > 0 {
		caps[media.ParamColorDepth] = float64(d.Hardware.ColorDepth)
	}
	return caps
}
