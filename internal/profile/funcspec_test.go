package profile

import (
	"math"
	"testing"

	"qoschain/internal/satisfaction"
)

func TestFuncSpecShapes(t *testing.T) {
	cases := []struct {
		spec FuncSpec
		x    float64
		want float64
	}{
		{LinearSpec(0, 30), 15, 0.5},
		{FuncSpec{Shape: "", Min: 0, Ideal: 10}, 5, 0.5}, // empty shape = linear
		{SCurveSpec(0, 10), 5, 0.5},
		{FuncSpec{Shape: "exponential", Min: 0, Ideal: 10, K: 0}, 4, 0.4},
		{FuncSpec{Shape: "step", Thresholds: []float64{5}, Levels: []float64{1}}, 6, 1},
		{FuncSpec{Shape: "piecewise", X: []float64{0, 10}, Y: []float64{0, 1}}, 5, 0.5},
	}
	for i, c := range cases {
		fn, err := c.spec.Function()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := fn.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Eval(%v) = %v, want %v", i, c.x, got, c.want)
		}
	}
}

func TestFuncSpecUnknownShape(t *testing.T) {
	if _, err := (FuncSpec{Shape: "wiggly"}).Function(); err == nil {
		t.Error("unknown shape should fail")
	}
}

func TestFuncSpecInvalidPiecewise(t *testing.T) {
	spec := FuncSpec{Shape: "piecewise", X: []float64{10, 0}, Y: []float64{0, 1}}
	if _, err := spec.Function(); err == nil {
		t.Error("decreasing X should fail")
	}
}

func TestFuncSpecValidate(t *testing.T) {
	if err := LinearSpec(0, 30).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (FuncSpec{Shape: "linear", Min: 30, Ideal: 0}).Validate(); err == nil {
		t.Error("inverted bounds should fail validation")
	}
	bad := LinearSpec(0, 30)
	bad.Weight = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight should fail validation")
	}
}

func TestFuncSpecContract(t *testing.T) {
	specs := []FuncSpec{
		LinearSpec(5, 20),
		SCurveSpec(5, 20),
		{Shape: "exponential", Min: 5, Ideal: 20, K: 2},
	}
	for i, spec := range specs {
		fn, err := spec.Function()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if err := satisfaction.CheckMonotone(fn, 64); err != nil {
			t.Errorf("spec %d violates contract: %v", i, err)
		}
	}
}
