package profile

import "fmt"

// Link describes one network link between two named hosts: the
// utilization/delay/error characteristics the network profile of Section 3
// collects for every link on the content delivery path.
type Link struct {
	// From and To are host IDs (sender, receiver or intermediaries).
	From string `json:"from"`
	To   string `json:"to"`
	// BandwidthKbps is the available (not raw) bandwidth.
	BandwidthKbps float64 `json:"bandwidthKbps"`
	// DelayMs is the one-way latency.
	DelayMs float64 `json:"delayMs,omitempty"`
	// LossRate is the packet loss probability in [0,1].
	LossRate float64 `json:"lossRate,omitempty"`
}

// Validate checks a single link description.
func (l Link) Validate() error {
	if l.From == "" || l.To == "" {
		return fmt.Errorf("profile: link with empty endpoint (%q -> %q)", l.From, l.To)
	}
	if l.From == l.To {
		return fmt.Errorf("profile: link from %q to itself", l.From)
	}
	if l.BandwidthKbps < 0 {
		return fmt.Errorf("profile: link %s->%s negative bandwidth", l.From, l.To)
	}
	if l.DelayMs < 0 {
		return fmt.Errorf("profile: link %s->%s negative delay", l.From, l.To)
	}
	if l.LossRate < 0 || l.LossRate > 1 {
		return fmt.Errorf("profile: link %s->%s loss rate %v outside [0,1]", l.From, l.To, l.LossRate)
	}
	return nil
}

// Network is the network profile of Section 3: the collection of measured
// links available for content delivery.
type Network struct {
	Links []Link `json:"links"`
}

// Validate checks every link and rejects duplicate directed pairs.
func (n *Network) Validate() error {
	seen := make(map[[2]string]bool, len(n.Links))
	for i, l := range n.Links {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("profile: network link %d: %w", i, err)
		}
		key := [2]string{l.From, l.To}
		if seen[key] {
			return fmt.Errorf("profile: duplicate link %s->%s", l.From, l.To)
		}
		seen[key] = true
	}
	return nil
}

// Bandwidth returns the available bandwidth between two hosts, or
// (0, false) when no direct link is described. Co-located endpoints
// (same host) report unlimited bandwidth, encoded as (0, true) with
// Unlimited — use BandwidthOrUnlimited for the selection-side semantics.
func (n *Network) Bandwidth(from, to string) (float64, bool) {
	for _, l := range n.Links {
		if l.From == from && l.To == to {
			return l.BandwidthKbps, true
		}
	}
	return 0, false
}

// Hosts returns the set of host IDs mentioned by any link.
func (n *Network) Hosts() map[string]bool {
	hosts := make(map[string]bool, len(n.Links)*2)
	for _, l := range n.Links {
		hosts[l.From] = true
		hosts[l.To] = true
	}
	return hosts
}
