package profile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeSet checks that arbitrary bytes never panic the profile-set
// decoder and that anything it accepts re-encodes and decodes cleanly.
func FuzzDecodeSet(f *testing.F) {
	var seed bytes.Buffer
	if err := validSet().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"user":{"name":"x"}}`))
	f.Add([]byte(`{"user":{"name":"x","preferences":{"framerate":{"shape":"linear","ideal":30}}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := DecodeSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := set.Encode(&buf); err != nil {
			t.Fatalf("accepted set failed to encode: %v", err)
		}
		if _, err := DecodeSet(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("re-encoded set failed to decode: %v", err)
		}
	})
}
