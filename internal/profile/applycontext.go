package profile

import (
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// ApplyContext adjusts a satisfaction profile to the user's current
// context (Section 3's "resource adaptation engines can use these
// elements to deliver the best experience"):
//
//   - in audio-hostile contexts (a meeting, very loud surroundings) the
//     audio parameters stop contributing to satisfaction, so the
//     selection algorithm spends bandwidth and budget on the visual
//     dimensions instead;
//   - in video-hostile contexts (driving) the visual parameters stop
//     contributing, biasing selection toward audio-only chains.
//
// The adjustment uses the weighted combination of [29]: hostile
// parameters get weight 0 (ignored), everything else keeps its weight
// (default 1). A neutral context returns the profile unchanged.
func ApplyContext(p satisfaction.Profile, ctx *Context) satisfaction.Profile {
	if ctx == nil || (!ctx.AudioHostile() && !ctx.VideoHostile()) {
		return p
	}
	out := satisfaction.Profile{
		Functions: p.Functions,
		Weights:   make(map[media.Param]float64, len(p.Functions)),
	}
	for name := range p.Functions {
		w := 1.0
		if p.Weights != nil {
			if existing, ok := p.Weights[name]; ok {
				w = existing
			}
		}
		out.Weights[name] = w
	}
	zero := func(params ...media.Param) {
		for _, name := range params {
			if _, scored := out.Functions[name]; scored {
				out.Weights[name] = 0
			}
		}
	}
	if ctx.AudioHostile() {
		zero(media.ParamAudioRate, media.ParamAudioBits)
	}
	if ctx.VideoHostile() {
		zero(media.ParamFrameRate, media.ParamResolution, media.ParamColorDepth)
	}
	return out
}
