package profile

import "fmt"

// Context is the context profile of Section 3: dynamic information about
// the user's current situation. MPEG-21 DIA's natural-environment tools
// inspire the fields; adaptation engines use them to bias the selection
// (e.g. mute audio in a meeting, raise contrast in sunlight).
type Context struct {
	// Location is a free-form place description ("office", "car").
	Location string `json:"location,omitempty"`
	// Activity is the social/organizational situation ("dinner",
	// "meeting", "acting senior manager").
	Activity string `json:"activity,omitempty"`
	// IlluminationLux is the ambient light level; 0 means unknown.
	IlluminationLux float64 `json:"illuminationLux,omitempty"`
	// NoiseDb is the ambient noise level; 0 means unknown.
	NoiseDb float64 `json:"noiseDb,omitempty"`
	// Moving reports whether the user is in motion (handover-prone
	// connectivity).
	Moving bool `json:"moving,omitempty"`
	// HourOfDay is the local hour in [0,24); -1 means unknown.
	HourOfDay int `json:"hourOfDay,omitempty"`
}

// Validate checks the context profile's numeric ranges.
func (c *Context) Validate() error {
	if c.IlluminationLux < 0 {
		return fmt.Errorf("profile: negative illumination %v", c.IlluminationLux)
	}
	if c.NoiseDb < 0 {
		return fmt.Errorf("profile: negative noise level %v", c.NoiseDb)
	}
	if c.HourOfDay < -1 || c.HourOfDay >= 24 {
		return fmt.Errorf("profile: hour of day %d outside [-1,24)", c.HourOfDay)
	}
	return nil
}

// AudioHostile reports whether the context argues against audio delivery
// (very noisy surroundings or a socially silent activity).
func (c *Context) AudioHostile() bool {
	if c.NoiseDb >= 80 {
		return true
	}
	switch c.Activity {
	case "meeting", "dinner", "lecture", "library":
		return true
	}
	return false
}

// VideoHostile reports whether the context argues against video delivery
// (e.g. the user is driving).
func (c *Context) VideoHostile() bool {
	return c.Activity == "driving"
}
