package sim

// overload.go is the deterministic overload experiment behind
// adaptsim -overload: a seeded burst of requests is pushed through the
// admission layers (per-client token buckets, then the bounded-queue
// concurrency limiter) under a virtual clock. Nothing sleeps and no
// goroutines run — every admit/queue/shed decision derives from the
// seed and the spec, so a run is exactly replayable.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qoschain/internal/admission"
	"qoschain/internal/metrics"
)

// OverloadSpec configures one overload burst. Zero fields pick the
// documented defaults.
type OverloadSpec struct {
	// Seed drives arrival times and client assignment.
	Seed int64
	// Capacity is the limiter's in-flight cap (default 8).
	Capacity int
	// MaxQueue is the limiter's wait-queue depth (default 2×Capacity).
	MaxQueue int
	// BurstFactor scales the burst: BurstFactor×Capacity requests
	// arrive within Spread (default 10 — the classic 10× overload).
	BurstFactor int
	// Clients is how many distinct client keys fire the burst
	// (default 4); requests are assigned to clients by the seed.
	Clients int
	// Rate and Burst are the per-client token bucket (default 20/s,
	// depth 10).
	Rate, Burst float64
	// ServiceTime is how long an admitted request holds its slot
	// (default 80ms).
	ServiceTime time.Duration
	// Deadline is each request's patience: a request still queued when
	// it elapses is shed (default 250ms).
	Deadline time.Duration
	// Spread is the arrival window of the burst (default 50ms).
	Spread time.Duration
	// Tick is the virtual-clock step (default 5ms).
	Tick time.Duration
}

func (s *OverloadSpec) withDefaults() OverloadSpec {
	out := *s
	if out.Capacity <= 0 {
		out.Capacity = 8
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 2 * out.Capacity
	}
	if out.BurstFactor <= 0 {
		out.BurstFactor = 10
	}
	if out.Clients <= 0 {
		out.Clients = 4
	}
	if out.Rate <= 0 {
		out.Rate = 20
	}
	if out.Burst <= 0 {
		out.Burst = 10
	}
	if out.ServiceTime <= 0 {
		out.ServiceTime = 80 * time.Millisecond
	}
	if out.Deadline <= 0 {
		out.Deadline = 250 * time.Millisecond
	}
	if out.Spread <= 0 {
		out.Spread = 50 * time.Millisecond
	}
	if out.Tick <= 0 {
		out.Tick = 5 * time.Millisecond
	}
	return out
}

// OverloadTick is one virtual-clock step of the experiment.
type OverloadTick struct {
	// AtMs is the tick's offset from the burst start in milliseconds.
	AtMs int64
	// Arrivals is how many requests arrived during this tick.
	Arrivals int
	// RateLimited of those were refused a token.
	RateLimited int
	// InFlight and QueueLen are the limiter occupancy after the tick.
	InFlight, QueueLen int
	// Completed is how many admitted requests finished this tick.
	Completed int
	// Expired is how many queued requests were shed for deadline
	// expiry this tick.
	Expired int
}

// OverloadReport is the exact breakdown of one burst. Every request is
// accounted for: Admitted + RateLimited + ShedQueueFull + ShedExpired
// == Requests, and Completed == Admitted once the run drains.
type OverloadReport struct {
	Spec     OverloadSpec
	Requests int
	// Admitted obtained a slot (AdmittedDirect immediately, the rest
	// after queueing); Completed finished their service time.
	Admitted, AdmittedDirect, Completed int
	// Queued requests waited for a slot at some point.
	Queued int
	// RateLimited were refused a token before reaching the limiter.
	RateLimited int
	// ShedQueueFull arrived at a full wait queue; ShedExpired ran out
	// of deadline while queued.
	ShedQueueFull, ShedExpired int
	// Ticks is how many virtual steps the run took to drain.
	Ticks int
	// Timeline is the per-tick trace (ticks with no activity are
	// omitted).
	Timeline []OverloadTick
	// Counters is the admission.* counter snapshot of the run.
	Counters map[string]int64
	// QueueWait summarizes the virtual-clock waiting time (ms) of
	// requests that queued before admission.
	QueueWait metrics.Summary
}

// Accounted reports whether every request's fate is recorded exactly
// once — the invariant the determinism tests assert.
func (r *OverloadReport) Accounted() bool {
	return r.Admitted+r.RateLimited+r.ShedQueueFull+r.ShedExpired == r.Requests &&
		r.Completed == r.Admitted
}

// overloadArrival is one scheduled request of the burst.
type overloadArrival struct {
	at     time.Duration // offset from burst start
	client string
}

// RunOverload drives one seeded burst through the admission layers
// under a virtual clock and returns the exact breakdown. The run
// advances tick by tick until every request is completed or shed.
func RunOverload(spec OverloadSpec) *OverloadReport {
	sp := spec.withDefaults()
	rng := rand.New(rand.NewSource(sp.Seed))
	clock := admission.NewVirtualClock(time.Time{})
	counters := metrics.NewCounters()
	lim := admission.NewLimiter(admission.LimiterConfig{
		Capacity: sp.Capacity,
		MaxQueue: sp.MaxQueue,
		Clock:    clock,
		Metrics:  counters,
	})
	rl := admission.NewRateLimiter(admission.RateConfig{
		Rate:    sp.Rate,
		Burst:   sp.Burst,
		Clock:   clock,
		Metrics: counters,
	})

	// Schedule the burst: BurstFactor×Capacity requests spread over the
	// arrival window, each from a seeded client. Sorting by (time,
	// client) makes the schedule independent of map/sort quirks.
	n := sp.BurstFactor * sp.Capacity
	arrivals := make([]overloadArrival, n)
	for i := range arrivals {
		arrivals[i] = overloadArrival{
			at:     time.Duration(rng.Int63n(int64(sp.Spread))),
			client: fmt.Sprintf("client-%d", rng.Intn(sp.Clients)),
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].client < arrivals[j].client
	})

	rep := &OverloadReport{Spec: sp, Requests: n}
	start := clock.Now()

	// running holds admitted tickets and their finish times; waiting
	// holds queued tickets to watch for promotion or shedding.
	type runningReq struct {
		t      *admission.Ticket
		finish time.Time
	}
	var running []runningReq
	var waiting []*admission.Ticket
	next := 0 // next arrival to inject

	for tick := 0; ; tick++ {
		now := clock.Now()
		tr := OverloadTick{AtMs: now.Sub(start).Milliseconds()}

		// 1. Finish admitted requests whose service time elapsed. Each
		// Release promotes the queue head in FIFO order (slot transfer).
		keepRunning := running[:0]
		for _, r := range running {
			if !now.Before(r.finish) {
				r.t.Release()
				rep.Completed++
				tr.Completed++
				continue
			}
			keepRunning = append(keepRunning, r)
		}
		running = keepRunning

		// 2. Shed queued requests that ran out of deadline.
		tr.Expired = lim.Expire()
		rep.ShedExpired += tr.Expired

		// 3. Inject this tick's arrivals: token bucket first, then the
		// limiter.
		for next < len(arrivals) && arrivals[next].at <= now.Sub(start) {
			a := arrivals[next]
			next++
			tr.Arrivals++
			if !rl.Allow(a.client) {
				rep.RateLimited++
				tr.RateLimited++
				continue
			}
			t := lim.Offer(now.Add(sp.Deadline))
			switch {
			case t.Admitted():
				rep.Admitted++
				rep.AdmittedDirect++
				running = append(running, runningReq{t, now.Add(sp.ServiceTime)})
			case t.Shed():
				rep.ShedQueueFull++
			default:
				rep.Queued++
				waiting = append(waiting, t)
			}
		}

		// 4. Collect promotions and expiries among the waiters. A
		// promoted waiter starts its service time now.
		keepWaiting := waiting[:0]
		for _, t := range waiting {
			switch {
			case t.Admitted():
				rep.Admitted++
				running = append(running, runningReq{t, now.Add(sp.ServiceTime)})
			case t.Shed():
				// Expired: already counted via lim.Expire's return or
				// shed during a Release promotion scan.
			default:
				keepWaiting = append(keepWaiting, t)
			}
		}
		waiting = keepWaiting

		st := lim.Stats()
		tr.InFlight, tr.QueueLen = st.InFlight, st.QueueLen
		if tr.Arrivals > 0 || tr.Completed > 0 || tr.Expired > 0 {
			rep.Timeline = append(rep.Timeline, tr)
		}

		if next >= len(arrivals) && len(running) == 0 && len(waiting) == 0 {
			rep.Ticks = tick + 1
			break
		}
		clock.Advance(sp.Tick)
	}

	// Release-time promotions can shed expired queue heads without going
	// through Expire; reconcile against the limiter's own totals.
	st := lim.Stats()
	rep.ShedExpired = int(st.ShedExpired)
	rep.ShedQueueFull = int(st.ShedQueueFull)
	rep.Counters = counters.Snapshot()
	rep.QueueWait = counters.SampleSummary(metrics.HistQueueWaitMs)
	return rep
}
