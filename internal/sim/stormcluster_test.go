package sim

import (
	"encoding/json"
	"testing"
)

// TestRunStormCluster pins EXPERIMENTS.md EXT-P: a correlated backbone
// fault over live /v1/sessions is absorbed class-at-a-time with
// naive-equivalent chains, and a primary killed mid-storm yields a
// promoted follower that finishes the storm to the byte-identical
// fingerprint with zero leaked kbps.
func TestRunStormCluster(t *testing.T) {
	rep, err := RunStormCluster(StormClusterSpec{
		StateRoot: t.TempDir(),
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("RunStormCluster: %v", err)
	}
	if !rep.OK() {
		data, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("storm-cluster contract violated:\n%s", data)
	}
	if rep.RefSelectCalls > rep.Classes {
		t.Errorf("reference run used %d Selects for %d classes", rep.RefSelectCalls, rep.Classes)
	}
	if rep.RefNaiveChecks == 0 {
		t.Error("reference run verified nothing — naive equivalence not exercised")
	}
	if rep.ResumedClasses < rep.RefAffectedClasses-1 {
		t.Errorf("follower resumed %d classes, want at least %d",
			rep.ResumedClasses, rep.RefAffectedClasses-1)
	}
	if rep.ShippedRecords == 0 {
		t.Error("nothing replicated before the kill")
	}
}
