package sim

import (
	"testing"

	"qoschain/internal/journal"
	"qoschain/internal/session"
)

// TestRunCrashAllFailpoints kills the Figure 6 deployment at every
// journal failpoint under a pinned seed and requires byte-identical
// recovery with zero leaked bandwidth at each.
func TestRunCrashAllFailpoints(t *testing.T) {
	for _, point := range journal.AllFailPoints {
		point := point
		t.Run(string(point), func(t *testing.T) {
			rep, err := RunCrash(CrashSpec{
				StateDir: t.TempDir(),
				Seed:     7,
				Point:    point,
			})
			if err != nil {
				t.Fatalf("RunCrash: %v", err)
			}
			if !rep.OK() {
				t.Fatalf("scenario failed: %+v", rep)
			}
			if rep.Sessions == 0 {
				t.Error("no sessions recovered")
			}
		})
	}
}

// TestRunCrashDeterministic requires two runs of the same scenario to
// crash at the same sequence and recover the same state.
func TestRunCrashDeterministic(t *testing.T) {
	run := func() *CrashReport {
		rep, err := RunCrash(CrashSpec{
			StateDir: t.TempDir(),
			Seed:     42,
			Point:    journal.FPTornAppend,
		})
		if err != nil {
			t.Fatalf("RunCrash: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if !a.OK() || !b.OK() {
		t.Fatalf("scenarios failed: %+v / %+v", a, b)
	}
	if a.CommittedSeq != b.CommittedSeq || a.RecoveredSeq != b.RecoveredSeq ||
		a.Sessions != b.Sessions {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestFigure6SetComposes sanity-checks the profile-set rendering of the
// Figure 6 deployment: it must validate and compose the same best chain
// the paper's Table 1 selects.
func TestFigure6SetComposes(t *testing.T) {
	set := Figure6Set()
	if err := set.Validate(); err != nil {
		t.Fatalf("set invalid: %v", err)
	}
	m, err := session.NewManager(session.ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Create(session.CreateSpec{Set: set, Reserve: true})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	st := ms.State()
	if len(st.Path) == 0 || st.Satisfaction <= 0 {
		t.Fatalf("state = %+v, want a composed chain", st)
	}
	if len(st.Reserved) == 0 {
		t.Error("session should hold reservations")
	}
}
