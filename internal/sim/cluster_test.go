package sim

import (
	"testing"

	"qoschain/internal/metrics"
)

// TestRunCluster runs the full failover scenario — replicate, kill,
// promote, verify — under a couple of seeds so different victims are
// exercised.
func TestRunCluster(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		counters := metrics.NewCounters()
		rep, err := RunCluster(ClusterSpec{
			StateRoot: t.TempDir(),
			Seed:      seed,
			Sessions:  4,
			Counters:  counters,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: contract violated: %+v", seed, rep)
		}
		if rep.ShippedRecords == 0 {
			t.Fatalf("seed %d: nothing replicated before the kill", seed)
		}
		if rep.Adopted == 0 || rep.ServedAfterFailover != rep.Adopted {
			t.Fatalf("seed %d: adopted %d, served %d", seed, rep.Adopted, rep.ServedAfterFailover)
		}
		if counters.Get(metrics.CounterClusterPromotions) == 0 {
			t.Fatalf("seed %d: no promotion recorded", seed)
		}
		if s := counters.SampleSummary(metrics.SampleReplicationLag); s.Count == 0 {
			t.Fatalf("seed %d: no replication lag samples", seed)
		}
	}
}
