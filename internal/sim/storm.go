package sim

// storm.go is the backbone-event survival harness (EXPERIMENTS.md
// EXT-O): a scaled Figure 6 deployment — several regions, each a
// Table 1 network resized to hold tens of thousands of sessions —
// grouped into equivalence classes under a storm controller. A seeded
// correlated backbone fault (fault.RandomSchedule with BackboneRate)
// collapses a region's links; the fired faults are reduced to their
// changed-link set and absorbed by one Storm() call.
//
// The harness measures what the storm controller is for:
//
//   - Select calls per affected session (must be ≪ 1: one plan per
//     equivalence class, not per session);
//   - zero leaked kbps: after recovery every region's reserved
//     bandwidth is exactly the sum of the member holds;
//   - equivalence: with Verify on, every member's chain is re-derived
//     by the naive per-session Select against the same repaired graph
//     and must match the class chain byte-for-byte.

import (
	"fmt"
	"math"

	"qoschain/internal/fault"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/paperexample"
	"qoschain/internal/profile"
	"qoschain/internal/storm"
)

// StormSpec configures one backbone-event scenario.
type StormSpec struct {
	// Seed drives the backbone fault draw.
	Seed int64
	// Sessions is the total session count across all regions (default
	// 100000).
	Sessions int
	// Regions is how many Table 1 deployments run side by side
	// (default 4).
	Regions int
	// ClassesPerRegion is how many equivalence classes each region's
	// sessions split into (default 8).
	ClassesPerRegion int
	// Verify enables the naive per-session equivalence check (default
	// off; the pinned run turns it on).
	Verify bool
	// LaneCapacity bounds concurrent class re-plans (default 2).
	LaneCapacity int
	// Workers drains the class queue (default 1 — deterministic).
	Workers int
	// Counters, when set, receives the storm.* metrics.
	Counters *metrics.Counters
}

// StormReport is the scenario outcome.
type StormReport struct {
	Seed             int64   `json:"seed"`
	Regions          int     `json:"regions"`
	Classes          int     `json:"classes"`
	Sessions         int     `json:"sessions"`
	SetupSelects     int     `json:"setupSelects"`
	BackboneLinks    int     `json:"backboneLinks"`
	AffectedClasses  int     `json:"affectedClasses"`
	AffectedSessions int     `json:"affectedSessions"`
	SelectCalls      int     `json:"selectCalls"`
	SelectsPerAff    float64 `json:"selectsPerAffectedSession"`
	Replanned        int     `json:"replanned"`
	UnchangedClasses int     `json:"unchangedClasses"`
	DegradedSessions int     `json:"degradedSessions"`
	SwapFailed       int     `json:"swapFailed"`
	NaiveChecks      int     `json:"naiveChecks,omitempty"`
	Mismatches       int     `json:"mismatches"`
	RecoveryMs       float64 `json:"recoveryMs"`
	LeakKbps         float64 `json:"leakKbps"`
	CacheRepairs     uint64  `json:"cacheRepairs"`
	CacheRebuilds    uint64  `json:"cacheRebuilds"`
	Err              string  `json:"err,omitempty"`
}

// OK reports whether the scenario met the storm contract: a backbone
// event actually hit sessions, re-composition cost was sub-linear in
// the affected population (≤ 0.05 Selects per affected session), no
// bandwidth leaked, and — when verified — the class chains matched the
// naive per-session plans exactly.
func (r *StormReport) OK() bool {
	return r.Err == "" && r.AffectedSessions > 0 && r.Mismatches == 0 &&
		r.LeakKbps == 0 && r.SelectsPerAff <= 0.05
}

// stormRegion wires one scaled Table 1 deployment.
type stormRegion struct {
	name string
	net  *overlay.Network
	spec storm.Region
}

// buildStormRegion constructs one region: a Table 1 topology whose
// every link is resized to hold the region's session population with
// ~15% headroom, so the pre-storm deployment is comfortably admitted
// and the backbone collapse (factor 0.35–0.65) genuinely
// over-subscribes it.
func buildStormRegion(name string, sessions int) stormRegion {
	net := paperexample.Table1Network()
	// Uniform capacity: population × worst-case per-session bitrate
	// (30 fps × 100 kbps) × 1.15 headroom.
	capacity := float64(sessions)*3000*1.15 + 3000
	for _, node := range net.Nodes() {
		for _, ref := range net.LinksOf(node) {
			_ = net.SetBandwidth(ref.From, ref.To, capacity)
		}
	}
	return stormRegion{
		name: name,
		net:  net,
		spec: storm.Region{
			Name:         name,
			Net:          net,
			Services:     paperexample.Table1Services(true),
			SenderHost:   "sender",
			ReceiverHost: "receiver",
		},
	}
}

// classSpecs derives the region's equivalence classes: same content and
// device, user preferences sweeping the ideal frame rate 18..30 fps and
// the QoS floor 0.50..0.85 — distinct planner fingerprints over a
// shared deployment.
func classSpecs(region string, n int) []storm.ClassSpec {
	specs := make([]storm.ClassSpec, 0, n)
	for i := 0; i < n; i++ {
		ideal := 18 + float64(i%7)*2
		floor := 0.50 + float64(i%8)*0.05
		specs = append(specs, storm.ClassSpec{
			Region:  region,
			Content: *paperexample.Table1Content(),
			Device:  *paperexample.Table1Device(),
			User: profile.User{
				Name: fmt.Sprintf("%s-class-%d", region, i),
				Preferences: map[media.Param]profile.FuncSpec{
					media.ParamFrameRate: profile.LinearSpec(0, ideal),
				},
			},
			Floor: floor,
		})
	}
	return specs
}

// RunStorm executes one backbone-event scenario end to end.
func RunStorm(spec StormSpec) (*StormReport, error) {
	if spec.Sessions <= 0 {
		spec.Sessions = 100000
	}
	if spec.Regions <= 0 {
		spec.Regions = 4
	}
	if spec.ClassesPerRegion <= 0 {
		spec.ClassesPerRegion = 8
	}
	rep := &StormReport{Seed: spec.Seed, Regions: spec.Regions}

	perRegion := spec.Sessions / spec.Regions
	regions := make([]stormRegion, 0, spec.Regions)
	specs := make([]storm.ClassSpec, 0, spec.Regions*spec.ClassesPerRegion)
	for r := 0; r < spec.Regions; r++ {
		reg := buildStormRegion(fmt.Sprintf("region-%d", r), perRegion)
		regions = append(regions, reg)
		specs = append(specs, classSpecs(reg.name, spec.ClassesPerRegion)...)
	}

	regionSpecs := make([]storm.Region, len(regions))
	for i, reg := range regions {
		regionSpecs[i] = reg.spec
	}
	ctrl, err := storm.Open(storm.Config{
		LaneCapacity: spec.LaneCapacity,
		Workers:      spec.Workers,
		Verify:       spec.Verify,
		Counters:     spec.Counters,
		CacheSize:    2 * len(specs),
	}, regionSpecs)
	if err != nil {
		return rep, fmt.Errorf("sim: storm controller: %w", err)
	}
	defer ctrl.Close()

	// Populate: one plan per class, then the members attach against it.
	perClass := spec.Sessions / len(specs)
	extra := spec.Sessions - perClass*len(specs)
	for i, cs := range specs {
		cls, err := ctrl.AddClass(cs)
		if err != nil {
			return rep, fmt.Errorf("sim: class %d: %w", i, err)
		}
		rep.SetupSelects++
		n := perClass
		if i < extra {
			n++
		}
		if n > 0 {
			if _, err := ctrl.Attach(cls.Key(), n); err != nil {
				return rep, fmt.Errorf("sim: attach %s: %w", cls.Key(), err)
			}
		}
	}
	rep.Classes = ctrl.Classes()
	rep.Sessions = ctrl.Sessions()
	if leak := auditLeak(ctrl, regions); leak != 0 {
		rep.LeakKbps = leak
		rep.Err = fmt.Sprintf("pre-storm leak of %.3f kbps", leak)
		return rep, nil
	}

	// The backbone event: a correlated multi-link bandwidth collapse in
	// each region, drawn by the seeded chaos scheduler. The sender is
	// the region's edge uplink cluster; every access link degrades
	// together under one fault group.
	for i, reg := range regions {
		schedule := fault.RandomSchedule(fault.ChaosSpec{
			Seed:         spec.Seed + int64(i),
			Steps:        1,
			BackboneRate: 1,
			Regions:      map[string]string{"sender": "edge"},
		}, reg.net, reg.spec.Services)
		inj, err := fault.NewInjector(reg.net, nil, schedule)
		if err != nil {
			return rep, fmt.Errorf("sim: injector %s: %w", reg.name, err)
		}
		fired := inj.Step()
		n, err := ctrl.OnFaults(reg.name, fired)
		if err != nil {
			return rep, fmt.Errorf("sim: reporting faults for %s: %w", reg.name, err)
		}
		rep.BackboneLinks += n
	}
	if rep.BackboneLinks == 0 {
		rep.Err = "backbone event produced no changed links"
		return rep, nil
	}

	stormRep, err := ctrl.Storm()
	if err != nil {
		return rep, fmt.Errorf("sim: storm: %w", err)
	}
	if stormRep == nil {
		rep.Err = "storm absorbed no pending links"
		return rep, nil
	}
	rep.AffectedClasses = stormRep.AffectedClasses
	rep.AffectedSessions = stormRep.AffectedSessions
	rep.SelectCalls = stormRep.SelectCalls
	rep.SelectsPerAff = stormRep.SelectPerSession
	rep.Replanned = stormRep.Replanned
	rep.UnchangedClasses = stormRep.Unchanged
	rep.DegradedSessions = stormRep.DegradedSessions
	rep.SwapFailed = stormRep.SwapFailed
	rep.NaiveChecks = stormRep.NaiveChecks
	rep.Mismatches = stormRep.Mismatches
	rep.RecoveryMs = stormRep.RecoveryMs
	rep.LeakKbps = auditLeak(ctrl, regions)
	stats := ctrl.CacheStats()
	rep.CacheRepairs = stats.Repairs
	rep.CacheRebuilds = stats.Misses
	if rep.LeakKbps != 0 {
		rep.Err = fmt.Sprintf("post-storm leak of %.3f kbps", rep.LeakKbps)
	}
	return rep, nil
}

// auditLeak compares each region's overlay-reserved total against the
// sum of the controller's member holds. Differences below the float
// noise floor (1e-6 relative) count as zero.
func auditLeak(ctrl *storm.Controller, regions []stormRegion) float64 {
	leak := 0.0
	for _, reg := range regions {
		held := ctrl.HeldKbps(reg.name)
		reserved := reg.net.TotalReservedKbps()
		d := reserved - held
		if math.Abs(d) <= 1e-6*math.Max(1, math.Max(held, reserved)) {
			continue
		}
		leak += d
	}
	return leak
}
