package sim

// stormcluster.go is the storm-safe live-path harness (EXPERIMENTS.md
// EXT-P): the daemon-path unification of /v1/sessions with the storm
// controller, replicated across the cluster tier, killed mid-storm.
//
// Two runs share one scaled Figure 6 deployment and one correlated
// backbone fault (a loss spike on the link every class chain crosses):
//
//   - the REFERENCE run drives a storm-attached manager in-process with
//     naive-equivalence verification on. It proves the daemon path
//     absorbs the fault in O(affected classes) Selects and that every
//     class chain matches the per-session Select byte-for-byte
//     (Mismatches == 0), then records the controller fingerprint.
//
//   - the KILL run drives the same creates over live HTTP against a
//     cluster primary whose controller is armed to halt after its first
//     storm fan-out. The WAL — session commands and storm records
//     interleaved — ships to a follower; the primary dies mid-storm
//     with a begin-without-end journaled. Promoting the follower
//     resumes the open storm in its recorded priority order. The
//     promoted controller's fingerprint must equal the reference run's
//     byte-for-byte, with zero leaked kbps on the shared region ledger.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"

	"qoschain/internal/cluster"
	"qoschain/internal/fault"
	"qoschain/internal/httpapi"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/registry"
	"qoschain/internal/session"
	"qoschain/internal/storm"
	"qoschain/internal/trace"
)

// StormClusterSpec configures one mid-storm failover scenario.
type StormClusterSpec struct {
	// StateRoot holds the two nodes' journal trees (a fresh temp dir
	// per scenario).
	StateRoot string
	// Seed derives the per-session create seeds.
	Seed int64
	// Classes is how many equivalence classes the sessions split into,
	// via QoS-floor variation over the shared deployment (default 6).
	Classes int
	// PerClass is how many sessions attach to each class (default 4).
	PerClass int
	// HaltAfterFanouts arms the primary's mid-storm crash: the
	// controller dies after journaling this many class fan-outs
	// (default 1 — the storm is barely started).
	HaltAfterFanouts int
	// SnapshotEvery compacts the primary journal this often (default 8,
	// small enough that the follower exercises the storm-mode snapshot
	// bootstrap).
	SnapshotEvery int
	// Counters, when set, receives the storm.*/replication.* series.
	Counters *metrics.Counters
}

// StormClusterReport is the scenario outcome.
type StormClusterReport struct {
	Seed     int64 `json:"seed"`
	Classes  int   `json:"classes"`
	Sessions int   `json:"sessions"`
	// Reference-run numbers: the daemon path's storm cost and the
	// naive-equivalence audit.
	RefAffectedClasses  int `json:"refAffectedClasses"`
	RefAffectedSessions int `json:"refAffectedSessions"`
	RefSelectCalls      int `json:"refSelectCalls"`
	RefNaiveChecks      int `json:"refNaiveChecks"`
	RefMismatches       int `json:"refMismatches"`
	// Kill-run numbers.
	ShippedRecords int64 `json:"shippedRecords"`
	// Halted reports the primary actually died mid-storm (the fault
	// request surfaced the halt instead of finishing the fan-out).
	Halted bool `json:"halted"`
	// ResumedClasses is how many fan-outs the promoted follower had to
	// finish (affected minus the pre-crash fan-outs).
	ResumedClasses int `json:"resumedClasses"`
	// FingerprintsIdentical is the headline check: the promoted
	// follower's controller fingerprint equals the reference run's
	// byte-for-byte.
	FingerprintsIdentical bool `json:"fingerprintsIdentical"`
	// LeakKbps is reserved bandwidth no member accounts for on the
	// promoted follower (must be 0).
	LeakKbps float64 `json:"leakKbps"`
	// RecoveryMs is the promotion latency including the resumed storm.
	RecoveryMs float64 `json:"recoveryMs"`
	// Cluster-observability checks (the tentpole's acceptance gates).
	// TraceNodes is how many distinct nodes contributed spans to the
	// stitched WAL-ship trace fetched from /debug/traces/cluster.
	TraceNodes int `json:"traceNodes"`
	// TraceOrdered reports the stitched timeline came back in
	// non-decreasing offset order.
	TraceOrdered bool `json:"traceOrdered"`
	// FlightSingleID reports the resumed storm kept ONE storm ID across
	// the kill: the dead primary's recorder and the promoted follower's
	// /debug/storms both carry the same storm sequence, and the
	// follower's single flight spans the replayed prefix and the live
	// post-promotion remainder.
	FlightSingleID bool `json:"flightSingleId"`
	// FederatedSeries counts series lines in the router's
	// /cluster/metrics merge (per-node and aggregated).
	FederatedSeries int `json:"federatedSeries"`
	// Err describes a contract violation; empty means the scenario
	// passed.
	Err string `json:"err,omitempty"`
}

// OK reports whether the scenario upheld the storm-safe live-path
// contract: the fault was absorbed class-at-a-time (Selects bounded by
// the class count, chains verified against the naive baseline), the
// primary died mid-storm, and the promoted follower resumed to the
// reference state exactly, leaking nothing.
func (r *StormClusterReport) OK() bool {
	return r.Err == "" && r.Halted && r.FingerprintsIdentical &&
		r.LeakKbps == 0 && r.RefMismatches == 0 &&
		r.RefSelectCalls <= r.Classes && r.ResumedClasses > 0 &&
		r.TraceNodes >= 2 && r.TraceOrdered && r.FlightSingleID &&
		r.FederatedSeries > 0
}

// stormClusterSet is the shared deployment: Figure 6 with every link
// scaled to hold the whole session population, so the loss spike — not
// capacity starvation — is what drives the storm.
func stormClusterSet(sessions int) profile.Set {
	set := Figure6Set()
	scale := math.Ceil(float64(sessions) * 1.15)
	for i := range set.Network.Links {
		set.Network.Links[i].BandwidthKbps *= scale
	}
	return set
}

// stormFloors derives the class-splitting QoS floors.
func stormFloors(classes int) []float64 {
	floors := make([]float64, classes)
	for i := range floors {
		floors[i] = 0.30 + 0.05*float64(i%10)
	}
	return floors
}

// createStormSessions drives the creates through one round-trip
// function (in-process or HTTP), PerClass sessions per floor, in
// deterministic order.
func createStormSessions(spec StormClusterSpec, create func(floor float64, seed int64) error) error {
	floors := stormFloors(spec.Classes)
	n := 0
	for _, floor := range floors {
		for j := 0; j < spec.PerClass; j++ {
			if err := create(floor, spec.Seed+int64(n)); err != nil {
				return err
			}
			n++
		}
	}
	return nil
}

// backboneLink resolves the link every class chain crosses: the hop
// from the sender to the first chain host. One loss spike there is the
// correlated backbone event.
func backboneLink(m *session.Manager, set *profile.Set) (from, to string, err error) {
	hostOf := map[string]string{}
	for _, in := range set.Intermediaries {
		for _, svc := range in.Services {
			hostOf[string(svc.ID)] = in.Host
		}
	}
	for _, ms := range m.List() {
		for _, hop := range ms.State().Path {
			if h, ok := hostOf[hop]; ok {
				return "sender", h, nil
			}
		}
	}
	return "", "", fmt.Errorf("sim: no session chain crosses an intermediary host")
}

// startStormNode opens one storm-attached cluster node and serves its
// API on a loopback socket, fully instrumented: a per-node metrics
// registry (scraped by the router's /cluster/metrics federation), a
// per-node tracer that adopts inbound X-Trace-Id headers (so one
// request's hops stitch cluster-wide), and the node-level /debug/storms
// flight recorder. The node's counters fan out to both the caller's
// shared sink and the node's own registry.
func startStormNode(id, dir string, halt, snapshotEvery int, counters *metrics.Counters) (*clusterNode, error) {
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	tracer := trace.NewTracer(256)
	n, err := cluster.NewNode(cluster.NodeConfig{
		ID: id, StateDir: dir, Host: "node-" + id,
		SnapshotEvery: snapshotEvery,
		Counters:      metrics.Fanout(counters, metrics.CountersOn(reg)),
		Storm:         true, StormHaltAfterFanouts: halt,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.Close() //nolint:errcheck
		return nil, err
	}
	api := httpapi.HandlerWithOptions(httpapi.Options{
		Sessions: n,
		Metrics:  reg,
		Storm:    n.Manager().StormController(),
	})
	h := httpapi.WithObservability(n.Handler(api), httpapi.ObsConfig{
		Registry: reg,
		Tracer:   tracer,
	})
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return &clusterNode{
		node: n, srv: srv, ln: ln,
		member: registry.Member{ID: id, Addr: ln.Addr().String(), Host: "node-" + id},
		reg:    reg, tracer: tracer,
	}, nil
}

// getJSON fetches a URL and decodes its JSON body into v, failing on
// any non-200 status.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return json.Unmarshal(body, v)
}

// RunStormCluster executes one mid-storm failover scenario end to end.
func RunStormCluster(spec StormClusterSpec) (*StormClusterReport, error) {
	if spec.Classes <= 0 {
		spec.Classes = 6
	}
	if spec.PerClass <= 0 {
		spec.PerClass = 4
	}
	if spec.HaltAfterFanouts <= 0 {
		spec.HaltAfterFanouts = 1
	}
	if spec.SnapshotEvery == 0 {
		spec.SnapshotEvery = 8
	}
	if spec.Counters == nil {
		spec.Counters = metrics.NewCounters()
	}
	rep := &StormClusterReport{Seed: spec.Seed, Classes: spec.Classes,
		Sessions: spec.Classes * spec.PerClass}
	ctx := context.Background()
	set := stormClusterSet(rep.Sessions)

	// ---- Reference run: in-process, verified, never killed. ----------
	refCounters := metrics.NewCounters()
	// The ID prefix matches the primary's so member IDs — part of the
	// controller fingerprint — agree between the runs.
	ref, err := session.NewManager(session.ManagerConfig{
		Storm: true, StormVerify: true, IDPrefix: "n1-", Counters: refCounters,
	})
	if err != nil {
		return rep, fmt.Errorf("sim: reference manager: %w", err)
	}
	err = createStormSessions(spec, func(floor float64, seed int64) error {
		_, err := ref.Create(session.CreateSpec{Set: set, Floor: floor, Seed: seed})
		return err
	})
	if err != nil {
		return rep, fmt.Errorf("sim: reference create: %w", err)
	}
	from, to, err := backboneLink(ref, &set)
	if err != nil {
		return rep, err
	}
	const lossRate = 0.05
	refSelectBase := refCounters.Get(metrics.CounterStormSelectCalls)
	refSession := ref.List()[0]
	if err := refSession.ApplyFault(fault.Fault{
		Kind: fault.LossSpike, From: from, To: to, LossRate: lossRate,
	}); err != nil {
		return rep, fmt.Errorf("sim: reference fault: %w", err)
	}
	rep.RefSelectCalls = int(refCounters.Get(metrics.CounterStormSelectCalls) - refSelectBase)
	refStorm := ref.StormController().Status().LastStorm
	if refStorm == nil {
		rep.Err = "reference fault triggered no storm"
		return rep, nil
	}
	rep.RefAffectedClasses = refStorm.AffectedClasses
	rep.RefAffectedSessions = refStorm.AffectedSessions
	rep.RefNaiveChecks = refStorm.NaiveChecks
	rep.RefMismatches = refStorm.Mismatches
	if rep.RefAffectedClasses <= spec.HaltAfterFanouts {
		rep.Err = fmt.Sprintf("fault affected %d classes; need more than the %d pre-crash fan-outs for a mid-storm kill",
			rep.RefAffectedClasses, spec.HaltAfterFanouts)
		return rep, nil
	}
	refFP, err := ref.StormController().Fingerprint()
	if err != nil {
		return rep, fmt.Errorf("sim: reference fingerprint: %w", err)
	}

	// ---- Kill run: live HTTP, halt-armed primary, one follower. ------
	n1, err := startStormNode("n1", spec.StateRoot+"/n1", spec.HaltAfterFanouts,
		spec.SnapshotEvery, spec.Counters)
	if err != nil {
		return rep, fmt.Errorf("sim: starting n1: %w", err)
	}
	defer n1.close()
	n2, err := startStormNode("n2", spec.StateRoot+"/n2", 0, spec.SnapshotEvery, spec.Counters)
	if err != nil {
		return rep, fmt.Errorf("sim: starting n2: %w", err)
	}
	defer n2.close()
	n1.node.Shipper().SetPeer(n2.member)

	var setBuf bytes.Buffer
	if err := set.Encode(&setBuf); err != nil {
		return rep, err
	}
	base := "http://" + n1.ln.Addr().String()
	shippedBase := spec.Counters.Get(metrics.CounterReplicationShippedRecords)
	var firstID string
	err = createStormSessions(spec, func(floor float64, seed int64) error {
		url := fmt.Sprintf("%s/v1/sessions?floor=%g&seed=%d", base, floor, seed)
		resp, err := http.Post(url, "application/json", bytes.NewReader(setBuf.Bytes()))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("%s: %s", resp.Status, body)
		}
		if firstID == "" {
			var st struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				return err
			}
			firstID = st.ID
		}
		_, err = n1.node.Shipper().Ship(ctx)
		return err
	})
	if err != nil {
		return rep, fmt.Errorf("sim: kill-run create: %w", err)
	}

	// ---- Cluster observability, while both nodes live. ---------------
	// A routing tier over the pair: it proxies session reads, stitches
	// distributed traces (/debug/traces/cluster) and federates the
	// members' registries (/cluster/metrics).
	routerReg := metrics.NewRegistry()
	metrics.RegisterWellKnown(routerReg)
	router := cluster.NewRouter(cluster.RouterConfig{
		Planner:  cluster.LocalPlanner{},
		Counters: metrics.CountersOn(routerReg),
		Metrics:  routerReg,
		Tracer:   trace.NewTracer(64),
	})
	router.UpdateMembers(ctx, []registry.Member{n1.member, n2.member})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	rsrv := &http.Server{Handler: router}
	go rsrv.Serve(rln) //nolint:errcheck
	defer rsrv.Close() //nolint:errcheck
	rbase := "http://" + rln.Addr().String()

	// One traced WAL ship: the shipper injects the trace ID on the wire
	// and the follower's middleware adopts it, so the same ID is
	// retained on both nodes.
	shipTr := n1.tracer.Start("replication.ship")
	if _, err := n1.node.Shipper().Ship(trace.NewContext(ctx, shipTr)); err != nil {
		return rep, fmt.Errorf("sim: traced ship: %w", err)
	}
	shipTr.Finish()

	// A proxied read through the router under the same trace ID — the
	// proxy must forward the caller's trace headers to the owner.
	getReq, _ := http.NewRequestWithContext(ctx, http.MethodGet, rbase+"/v1/sessions/"+firstID, nil)
	getReq.Header.Set(trace.HeaderTraceID, shipTr.ID())
	getResp, err := http.DefaultClient.Do(getReq)
	if err != nil {
		return rep, fmt.Errorf("sim: proxied read: %w", err)
	}
	io.Copy(io.Discard, getResp.Body) //nolint:errcheck
	getResp.Body.Close()              //nolint:errcheck
	if getResp.StatusCode != http.StatusOK {
		rep.Err = fmt.Sprintf("router proxy lost session %s: %s", firstID, getResp.Status)
		return rep, nil
	}

	// Stitch: the trace must span both nodes in timeline order.
	var stitched cluster.ClusterTrace
	if err := getJSON(rbase+"/debug/traces/cluster?id="+shipTr.ID(), &stitched); err != nil {
		return rep, fmt.Errorf("sim: cluster trace: %w", err)
	}
	rep.TraceNodes = len(stitched.Nodes)
	rep.TraceOrdered = len(stitched.Spans) > 0
	for i := 1; i < len(stitched.Spans); i++ {
		if stitched.Spans[i].OffsetMs < stitched.Spans[i-1].OffsetMs {
			rep.TraceOrdered = false
		}
	}
	if rep.TraceNodes < 2 || !rep.TraceOrdered {
		rep.Err = fmt.Sprintf("stitched trace %s spans %d nodes (ordered %v); want >=2 nodes in order",
			shipTr.ID(), rep.TraceNodes, rep.TraceOrdered)
		return rep, nil
	}

	// Federation: every member's registry merged under a node label,
	// plus the storm./qos. aggregates.
	fedResp, err := http.Get(rbase + "/cluster/metrics")
	if err != nil {
		return rep, fmt.Errorf("sim: cluster metrics: %w", err)
	}
	fedBody, _ := io.ReadAll(fedResp.Body)
	fedResp.Body.Close() //nolint:errcheck
	for _, line := range strings.Split(string(fedBody), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			rep.FederatedSeries++
		}
	}
	fed := string(fedBody)
	if !strings.Contains(fed, `node="n1"`) || !strings.Contains(fed, `node="n2"`) {
		rep.Err = "federated exposition is missing a member's node label"
		return rep, nil
	}

	// The backbone event, through the live fault endpoint of ONE
	// session. The primary fans out the first class, journals it, and
	// dies: the request surfaces the halt as an error.
	faultBody, _ := json.Marshal(map[string]any{
		"kind": "loss", "from": from, "to": to, "lossRate": lossRate,
	})
	resp, err := http.Post(base+"/v1/sessions/"+firstID+"/fault",
		"application/json", bytes.NewReader(faultBody))
	if err != nil {
		return rep, fmt.Errorf("sim: kill-run fault: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	rep.Halted = resp.StatusCode != http.StatusOK && strings.Contains(string(body), "halted")
	if !rep.Halted {
		rep.Err = fmt.Sprintf("primary did not halt mid-storm: %s: %s", resp.Status, body)
		return rep, nil
	}

	// The dying primary's last ship carries the fault command, the
	// storm begin and the pre-crash fan-outs — and no end record.
	if _, err := n1.node.Shipper().Ship(ctx); err != nil {
		return rep, fmt.Errorf("sim: final ship: %w", err)
	}
	rep.ShippedRecords = spec.Counters.Get(metrics.CounterReplicationShippedRecords) - shippedBase
	n1.srv.Close() //nolint:errcheck

	// Promote: the follower adopts the replica, and its storm-mode
	// Reconcile finds the begin-without-end and finishes the storm in
	// the recorded priority order. No host fault is injected — the dead
	// node is not part of the content overlay.
	promo, err := n2.node.Promote("n1", "")
	if err != nil {
		return rep, fmt.Errorf("sim: promote: %w", err)
	}
	rep.RecoveryMs = promo.TookMs

	// The resume must be real: the promoted controller's last storm is
	// the finished open storm, covering exactly the fan-outs the dead
	// primary never ran.
	rm, ok := n2.node.ReplicaManager("n1")
	if !ok {
		return rep, fmt.Errorf("sim: n2 lost its replica of n1 after promotion")
	}
	rctrl := rm.StormController()
	last := rctrl.Status().LastStorm
	if last == nil || !last.Resumed {
		rep.Err = "promoted follower did not resume the open storm"
		return rep, nil
	}
	rep.ResumedClasses = last.AffectedClasses

	// Flight recorder: ONE storm ID across the kill. The dead primary's
	// in-process recorder holds the live pre-kill segment; the promoted
	// follower's /debug/storms must show exactly one flight under the
	// same storm sequence — resumed, closed, and spanning both the
	// replayed (pre-kill, off the shipped WAL) and the live
	// (post-promotion) events.
	killSeq := -1
	if fs := n1.node.Manager().StormController().Flights(); len(fs) > 0 {
		killSeq = fs[0].Storm
	}
	var storms struct {
		Storms []storm.Flight `json:"storms"`
	}
	if err := getJSON("http://"+n2.ln.Addr().String()+"/debug/storms", &storms); err != nil {
		return rep, fmt.Errorf("sim: follower /debug/storms: %w", err)
	}
	matches := 0
	for _, f := range storms.Storms {
		if f.Source != "promoted:n1" || f.Storm != killSeq {
			continue
		}
		matches++
		replayed, live := false, false
		for _, ev := range f.Events {
			if ev.Replayed {
				replayed = true
			} else {
				live = true
			}
		}
		rep.FlightSingleID = f.Resumed && !f.Open && replayed && live
	}
	if matches != 1 || !rep.FlightSingleID {
		rep.FlightSingleID = false
		rep.Err = fmt.Sprintf("flight recorder did not keep one storm ID across the kill (storm %d, %d matching flights)",
			killSeq, matches)
		return rep, nil
	}

	// The promoted controller must land on the reference state exactly.
	gotFP, err := n2.node.StormFingerprint("n1")
	if err != nil {
		return rep, fmt.Errorf("sim: promoted fingerprint: %w", err)
	}
	rep.FingerprintsIdentical = gotFP == refFP
	if !rep.FingerprintsIdentical {
		rep.Err = fmt.Sprintf("promoted storm state diverged from the reference run\n got %s\nwant %s", gotFP, refFP)
		return rep, nil
	}

	// Zero-leak audit on the promoted follower's shared region ledger.
	for _, name := range rctrl.Regions() {
		held := rctrl.HeldKbps(name)
		reserved := rctrl.RegionNet(name).TotalReservedKbps()
		if d := reserved - held; math.Abs(d) > 1e-6*math.Max(1, math.Max(held, reserved)) {
			rep.LeakKbps += d
		}
	}
	if rep.LeakKbps != 0 {
		rep.Err = fmt.Sprintf("promoted follower leaked %.3f kbps", rep.LeakKbps)
	}
	return rep, nil
}
