package sim

import (
	"encoding/json"
	"testing"
)

// TestStormClusterObservability pins the cluster-observability contract
// across a mid-storm primary kill: the WAL-ship trace stitches into one
// ordered timeline spanning both nodes, the resumed storm's flight
// recorder carries a single storm ID across the kill (replayed pre-kill
// segment plus live post-promotion remainder in one flight), and the
// router's /cluster/metrics federates both members' registries.
func TestStormClusterObservability(t *testing.T) {
	rep, err := RunStormCluster(StormClusterSpec{
		StateRoot: t.TempDir(),
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("RunStormCluster: %v", err)
	}
	if !rep.OK() {
		data, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("storm-cluster contract violated:\n%s", data)
	}
	if rep.TraceNodes < 2 {
		t.Errorf("stitched ship trace spans %d nodes, want >= 2", rep.TraceNodes)
	}
	if !rep.TraceOrdered {
		t.Error("stitched trace timeline is not in non-decreasing offset order")
	}
	if !rep.FlightSingleID {
		t.Error("resumed storm did not keep one storm ID across the kill")
	}
	if rep.FederatedSeries == 0 {
		t.Error("/cluster/metrics federated no series")
	}
}
