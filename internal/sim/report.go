package sim

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the report as a self-contained Markdown document:
// a per-step table, a per-session table, and the aggregates — the artifact
// an experiment run hands to a write-up.
func (r *Report) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Simulation report: %s\n\n", r.Name)
	fmt.Fprintf(&b, "%d steps, %d sessions, overall mean satisfaction %.3f, %d rejections.\n\n",
		len(r.Steps), len(r.Sessions), r.MeanSatisfaction(), r.TotalRejections())

	b.WriteString("## Per-step\n\n")
	b.WriteString("| step | arrivals | departures | active | mean satisfaction | recompositions | rejections | degraded |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %.3f | %d | %d | %d |\n",
			s.Step, s.Arrivals, s.Departures, s.Active, s.MeanSat, s.Recompositions, s.Rejections, s.Degraded)
	}

	if r.Counters != nil {
		b.WriteString("\n## Failover metrics\n\n```\n")
		r.Counters.Render(&b)
		b.WriteString("```\n")
	}

	b.WriteString("\n## Per-session\n\n")
	b.WriteString("| session | user | device | arrived | departed | final chain | final satisfaction |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, sess := range r.Sessions {
		departed := "—"
		if sess.DepartStep > 0 {
			departed = fmt.Sprintf("%d", sess.DepartStep)
		}
		chain := sess.FinalPath
		sat := fmt.Sprintf("%.3f", sess.FinalSat)
		if sess.Rejected {
			chain, sat = "*(rejected)*", "—"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %s | %s | %s |\n",
			sess.ID, sess.User, sess.Device, sess.ArriveStep, departed, chain, sat)
	}

	// Satisfaction timelines for sessions that lived more than one step.
	wroteHeader := false
	for _, sess := range r.Sessions {
		if len(sess.Samples) < 2 {
			continue
		}
		if !wroteHeader {
			b.WriteString("\n## Timelines\n")
			wroteHeader = true
		}
		fmt.Fprintf(&b, "\n### %s\n\n| step | chain | satisfaction | recomposed |\n|---|---|---|---|\n", sess.ID)
		for _, s := range sess.Samples {
			mark := ""
			if s.Recomposed {
				mark = "✓"
			}
			fmt.Fprintf(&b, "| %d | %s | %.3f | %s |\n", s.Step, s.Path, s.Satisfaction, mark)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
