package sim

// crash.go is the deterministic crash-recovery harness: it drives a
// persistent session.Manager over the paper's Figure 6 deployment while
// a seeded command schedule creates sessions (with bandwidth holds),
// injects host faults, and re-evaluates chains — then "kills" the
// process at an armed journal failpoint and recovers a fresh manager
// from the state directory.
//
// The harness records a fingerprint of the full session state after
// every committed command, keyed by journal sequence number. After the
// crash it checks the recovery contract:
//
//   - the recovered manager resumes at either the last committed
//     sequence before the crashed command or the crashed command's own
//     sequence (when its record reached the file before the "kill") —
//     never anywhere else;
//   - the recovered session state is byte-identical to the fingerprint
//     recorded at that sequence;
//   - after Reconcile, every bandwidth hold sits on a usable link and
//     the overlay's total reserved bandwidth equals exactly what the
//     sessions account for — zero leaked kbps.
//
// Everything derives from the seed: the schedule, the session jitter,
// and the armed failpoint hit, so a failing run reproduces exactly.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"qoschain/internal/fault"
	"qoschain/internal/journal"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/paperexample"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
	"qoschain/internal/trace"
)

// Figure6Set renders the paper's Figure 6 deployment as a profile.Set —
// the form a session is created from (and journaled as). The user's
// satisfaction is linear in frame rate with ideal 30 fps, matching the
// Table 1 configuration.
func Figure6Set() profile.Set {
	net := paperexample.Table1Network().Snapshot()
	sort.Slice(net.Links, func(i, j int) bool {
		if net.Links[i].From != net.Links[j].From {
			return net.Links[i].From < net.Links[j].From
		}
		return net.Links[i].To < net.Links[j].To
	})
	byHost := map[string][]*service.Service{}
	hosts := []string{}
	for _, svc := range paperexample.Table1Services(true) {
		if len(byHost[svc.Host]) == 0 {
			hosts = append(hosts, svc.Host)
		}
		byHost[svc.Host] = append(byHost[svc.Host], svc)
	}
	sort.Strings(hosts)
	var inter []profile.Intermediary
	for _, h := range hosts {
		inter = append(inter, profile.Intermediary{
			Host: h, CPUMips: 1000, MemoryMB: 256, Services: byHost[h],
		})
	}
	return profile.Set{
		User: profile.User{
			Name: "figure6-user",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content:        *paperexample.Table1Content(),
		Device:         *paperexample.Table1Device(),
		Network:        net,
		Intermediaries: inter,
	}
}

// CrashSpec configures one crash-recovery scenario.
type CrashSpec struct {
	// StateDir is the journal directory (a fresh temp dir per scenario).
	StateDir string
	// Seed derives the command schedule, session jitter, and the armed
	// failpoint hit.
	Seed int64
	// Point is the journal failpoint the "kill" fires at.
	Point journal.FailPoint
	// Sessions is how many Figure 6 sessions the schedule creates
	// (default 2).
	Sessions int
	// Steps is how many fault/reevaluate commands the schedule issues
	// before topping up with re-evaluations until the failpoint fires
	// (default 12).
	Steps int
	// SnapshotEvery compacts the journal this often (default 5, small so
	// snapshot failpoints are reachable).
	SnapshotEvery int
	// Counters, when set, receives the journal.*/recovery.* metrics of
	// both the crashed run and its recovery — the caller typically shares
	// one sink across every scenario for an aggregate report. Tracing and
	// metrics never influence the journaled state, so the byte-identity
	// contract is unaffected.
	Counters *metrics.Counters
	// Tracer, when set, records one trace per driven command.
	Tracer *trace.Tracer
}

// CrashReport is one scenario's outcome.
type CrashReport struct {
	Point   journal.FailPoint `json:"point"`
	Seed    int64             `json:"seed"`
	Crashed bool              `json:"crashed"`
	// CommittedSeq is the last journaled sequence before the crashed
	// command; AppliedSeq the in-memory sequence at the instant of the
	// crash (equal to CommittedSeq when the record never reached the
	// file, one past it when it did).
	CommittedSeq uint64 `json:"committedSeq"`
	AppliedSeq   uint64 `json:"appliedSeq"`
	// RecoveredSeq is where the recovered manager resumed.
	RecoveredSeq   uint64 `json:"recoveredSeq"`
	Sessions       int    `json:"sessions"`
	TruncatedBytes int64  `json:"truncatedBytes"`
	// Identical reports the byte-identity check against the fingerprint
	// recorded at RecoveredSeq.
	Identical bool `json:"identical"`
	// Reconciled/ReleasedKbps summarize the post-recovery sweep.
	Reconciled   int     `json:"reconciled"`
	ReleasedKbps float64 `json:"releasedKbps"`
	// LeakKbps is overlay-reserved bandwidth no session accounts for
	// after Reconcile (must be 0).
	LeakKbps float64 `json:"leakKbps"`
	// Err describes a contract violation; empty means the scenario
	// passed.
	Err string `json:"err,omitempty"`
}

// OK reports whether the scenario crashed where armed and recovered
// within the contract.
func (r *CrashReport) OK() bool {
	return r.Crashed && r.Identical && r.LeakKbps == 0 && r.Err == ""
}

// managerFingerprint renders every session's canonical state, in ID
// order, as one string.
func managerFingerprint(m *session.Manager) (string, error) {
	var b strings.Builder
	for _, ms := range m.List() {
		fp, err := ms.Fingerprint()
		if err != nil {
			return "", err
		}
		b.WriteString(fp)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RunCrash executes one scenario: build, run, kill, recover, verify.
func RunCrash(spec CrashSpec) (*CrashReport, error) {
	if spec.Sessions <= 0 {
		spec.Sessions = 2
	}
	if spec.Steps <= 0 {
		spec.Steps = 12
	}
	if spec.SnapshotEvery == 0 {
		spec.SnapshotEvery = 5
	}
	rep := &CrashReport{Point: spec.Point, Seed: spec.Seed}
	rng := rand.New(rand.NewSource(spec.Seed))
	fp := journal.NewFailPoints()

	m, err := session.NewManager(session.ManagerConfig{
		StateDir:      spec.StateDir,
		SnapshotEvery: spec.SnapshotEvery,
		FailPoints:    fp,
		Counters:      spec.Counters,
	})
	if err != nil {
		return rep, fmt.Errorf("sim: opening state dir: %w", err)
	}

	// traced runs one driven command under a fresh trace when the spec
	// carries a tracer (a nil tracer yields a plain background context).
	traced := func(name string, run func(context.Context) error) error {
		ctx := context.Background()
		var tr *trace.Trace
		if spec.Tracer != nil {
			tr = spec.Tracer.Start(name)
			ctx = trace.NewContext(ctx, tr)
		}
		err := run(ctx)
		tr.Finish()
		return err
	}

	// states[seq] is the canonical session state after the command that
	// journaled seq committed.
	states := map[uint64]string{}
	record := func() error {
		s, err := managerFingerprint(m)
		if err != nil {
			return err
		}
		states[m.LastSeq()] = s
		return nil
	}
	if err := record(); err != nil {
		return rep, err
	}

	set := Figure6Set()
	var ids []string
	crashed := false
	// committedSeq tracks the last seq known journaled before each
	// command.
	step := func(run func() error) error {
		rep.CommittedSeq = m.LastSeq()
		err := run()
		if err != nil && journal.IsCrash(err) {
			crashed = true
			return nil
		}
		if err != nil {
			return err
		}
		return record()
	}

	// Create the sessions, then arm the failpoint somewhere inside the
	// fault/reevaluate schedule.
	for i := 0; i < spec.Sessions && !crashed; i++ {
		err := step(func() error {
			return traced("crash.create", func(ctx context.Context) error {
				_, err := m.CreateCtx(ctx, session.CreateSpec{
					Set: set, Floor: 0.3, Seed: spec.Seed + int64(i), Reserve: true,
				})
				return err
			})
		})
		if err != nil {
			return rep, fmt.Errorf("sim: creating session %d: %w", i, err)
		}
	}
	for _, ms := range m.List() {
		ids = append(ids, ms.ID())
	}
	fp.Arm(spec.Point, fp.Hits(spec.Point)+1+rng.Intn(spec.Steps))

	// Candidate hosts for crash/recover faults: the Figure 6 proxies.
	var downable []string
	for i := 1; i <= 20; i++ {
		downable = append(downable, fmt.Sprintf("p%d", i))
	}
	down := map[string]map[string]bool{}
	for _, id := range ids {
		down[id] = map[string]bool{}
	}

	for i := 0; i < spec.Steps && !crashed; i++ {
		id := ids[rng.Intn(len(ids))]
		ms, ok := m.Get(id)
		if !ok {
			return rep, fmt.Errorf("sim: session %s vanished", id)
		}
		var err error
		switch rng.Intn(3) {
		case 0: // crash or recover a host on this session's overlay
			host := downable[rng.Intn(len(downable))]
			f := fault.Fault{AtStep: 1, Kind: fault.HostCrash, Host: host}
			if down[id][host] {
				f.Kind = fault.HostRecover
			}
			err = step(func() error {
				return traced("crash.fault", func(ctx context.Context) error {
					return ms.ApplyFaultCtx(ctx, f)
				})
			})
			if err == nil && !crashed {
				down[id][host] = f.Kind == fault.HostCrash
			}
		default: // advance and re-evaluate
			err = step(func() error {
				return traced("crash.reevaluate", func(ctx context.Context) error {
					_, _, logErr := ms.ReevaluateCtx(ctx)
					return logErr
				})
			})
		}
		if err != nil {
			return rep, fmt.Errorf("sim: step %d: %w", i, err)
		}
	}
	// Top up with re-evaluations until the armed point fires (bounded).
	for extra := 0; !crashed && extra < 10*spec.Steps; extra++ {
		ms, _ := m.Get(ids[0])
		if err := step(func() error {
			return traced("crash.reevaluate", func(ctx context.Context) error {
				_, _, logErr := ms.ReevaluateCtx(ctx)
				return logErr
			})
		}); err != nil {
			return rep, fmt.Errorf("sim: top-up: %w", err)
		}
	}
	if !crashed {
		rep.Err = fmt.Sprintf("failpoint %s never fired", spec.Point)
		return rep, nil
	}
	rep.Crashed = true
	rep.AppliedSeq = m.LastSeq()
	// When the crashed command's record reached the file (the journal
	// sequence advanced), recovery may legitimately land on it — record
	// the applied in-memory state under that sequence. When it did not,
	// states[CommittedSeq] must stay the pre-crash fingerprint: the
	// command applied in memory but is not recoverable.
	if rep.AppliedSeq > rep.CommittedSeq {
		applied, err := managerFingerprint(m)
		if err != nil {
			return rep, err
		}
		states[rep.AppliedSeq] = applied
	}
	// The crashed process is gone; only the state directory survives.

	m2, err := session.NewManager(session.ManagerConfig{StateDir: spec.StateDir, Counters: spec.Counters})
	if err != nil {
		return rep, fmt.Errorf("sim: recovering: %w", err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	rep.RecoveredSeq = rec.LastSeq
	rep.Sessions = rec.Sessions
	rep.TruncatedBytes = rec.TruncatedBytes
	if len(rec.ReplayErrors) > 0 {
		rep.Err = "replay errors: " + strings.Join(rec.ReplayErrors, "; ")
		return rep, nil
	}
	if rep.RecoveredSeq != rep.CommittedSeq && rep.RecoveredSeq != rep.AppliedSeq {
		rep.Err = fmt.Sprintf("recovered at seq %d, want %d or %d",
			rep.RecoveredSeq, rep.CommittedSeq, rep.AppliedSeq)
		return rep, nil
	}
	got, err := managerFingerprint(m2)
	if err != nil {
		return rep, err
	}
	want := states[rep.RecoveredSeq]
	rep.Identical = got == want
	if !rep.Identical {
		rep.Err = fmt.Sprintf("state at seq %d diverged:\n got %s\nwant %s",
			rep.RecoveredSeq, got, want)
		return rep, nil
	}

	// Reconcile, then audit the holds: every reservation the overlay
	// carries must be accounted for by a session and sit on a live link.
	sweep := m2.Reconcile()
	rep.Reconciled = sweep.Recomposed
	rep.ReleasedKbps = sweep.ReleasedKbps
	for _, ms := range m2.List() {
		var held float64
		for _, r := range ms.Held() {
			if !ms.Net().Usable(r.From, r.To) {
				rep.Err = fmt.Sprintf("session %s holds %s->%s on an unusable link",
					ms.ID(), r.From, r.To)
				return rep, nil
			}
			held += r.Kbps
		}
		rep.LeakKbps += ms.Net().TotalReservedKbps() - held
	}
	if rep.LeakKbps != 0 {
		rep.Err = fmt.Sprintf("leaked %.1f kbps of reservations", rep.LeakKbps)
	}
	return rep, nil
}
