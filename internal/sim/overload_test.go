package sim

import (
	"reflect"
	"testing"
	"time"

	"qoschain/internal/metrics"
)

func TestRunOverloadDeterministic(t *testing.T) {
	a := RunOverload(OverloadSpec{Seed: 42})
	b := RunOverload(OverloadSpec{Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed must replay exactly:\n%+v\nvs\n%+v", a, b)
	}
	c := RunOverload(OverloadSpec{Seed: 43})
	if reflect.DeepEqual(a.Timeline, c.Timeline) {
		t.Error("different seeds should produce different schedules")
	}
}

// TestRunOverloadExactBreakdown pins the seed-42 burst: 10x capacity 8
// with a 16-deep queue admits exactly 24 requests, rate-limits 40, and
// sheds 16 at the full queue. A change to any admission layer that
// alters the schedule fails this test.
func TestRunOverloadExactBreakdown(t *testing.T) {
	rep := RunOverload(OverloadSpec{Seed: 42})
	if rep.Requests != 80 {
		t.Fatalf("requests = %d, want 80 (10x capacity 8)", rep.Requests)
	}
	if rep.Admitted != 24 || rep.AdmittedDirect != 8 || rep.Queued != 16 {
		t.Errorf("admitted=%d direct=%d queued=%d, want 24/8/16", rep.Admitted, rep.AdmittedDirect, rep.Queued)
	}
	if rep.RateLimited != 40 || rep.ShedQueueFull != 16 || rep.ShedExpired != 0 {
		t.Errorf("rate-limited=%d queue-full=%d expired=%d, want 40/16/0",
			rep.RateLimited, rep.ShedQueueFull, rep.ShedExpired)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed=%d, every admitted request (%d) must finish", rep.Completed, rep.Admitted)
	}
	if !rep.Accounted() {
		t.Errorf("requests unaccounted: %+v", rep)
	}
	// The counters mirror the report.
	if rep.Counters[metrics.CounterAdmissionAdmitted] != int64(rep.Admitted) ||
		rep.Counters[metrics.CounterAdmissionRateLimited] != int64(rep.RateLimited) ||
		rep.Counters[metrics.CounterAdmissionShedQueueFull] != int64(rep.ShedQueueFull) {
		t.Errorf("counters disagree with report: %v", rep.Counters)
	}
}

func TestRunOverloadAccountedAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rep := RunOverload(OverloadSpec{Seed: seed})
		if !rep.Accounted() {
			t.Errorf("seed %d: unaccounted requests: admitted=%d rate-limited=%d queue-full=%d expired=%d of %d, completed=%d",
				seed, rep.Admitted, rep.RateLimited, rep.ShedQueueFull, rep.ShedExpired, rep.Requests, rep.Completed)
		}
	}
}

// TestRunOverloadDeadlineShedding shrinks the deadline below the queue
// wait so deadline expiry — not just queue overflow — appears in the
// breakdown.
func TestRunOverloadDeadlineShedding(t *testing.T) {
	rep := RunOverload(OverloadSpec{
		Seed:        7,
		Capacity:    2,
		MaxQueue:    16,
		BurstFactor: 10,
		Rate:        10000, // effectively no rate limiting
		Burst:       10000,
		ServiceTime: 100 * time.Millisecond,
		Deadline:    60 * time.Millisecond, // shorter than one service rotation
	})
	if rep.ShedExpired == 0 {
		t.Errorf("tight deadline must shed queued requests by expiry: %+v", rep)
	}
	if !rep.Accounted() {
		t.Errorf("unaccounted: %+v", rep)
	}
}
