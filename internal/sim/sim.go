// Package sim runs declarative, reproducible simulations of a whole
// adaptation deployment: a scenario names the network, the intermediaries
// with their trans-coding services, the content, a cast of users and
// devices, and a schedule of events (session arrivals and departures,
// bandwidth changes, link failures). The engine steps through virtual
// time, re-evaluating every active session each step, and reports
// per-step aggregates plus per-session traces.
//
// Scenarios are plain JSON, so experiments can be written and versioned
// as data (`cmd/adaptsim -scenario file.json`).
package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/graph"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// Event is one scheduled occurrence. Kind selects the variant:
//
//	arrive      SessionID, User, Device  — a session joins
//	depart      SessionID                — a session leaves
//	bandwidth   From, To, Kbps           — a link's capacity changes
//	removelink  From, To                 — a link is removed for good
//	hostdown    Host                     — a host crashes (links + services)
//	hostup      Host                     — a crashed host recovers
//	servicedown Service                  — a service deregisters
//	serviceup   Service                  — a deregistered service returns
type Event struct {
	AtStep    int     `json:"atStep"`
	Kind      string  `json:"kind"`
	SessionID string  `json:"sessionId,omitempty"`
	User      string  `json:"user,omitempty"`
	Device    string  `json:"device,omitempty"`
	From      string  `json:"from,omitempty"`
	To        string  `json:"to,omitempty"`
	Kbps      float64 `json:"kbps,omitempty"`
	Host      string  `json:"host,omitempty"`
	Service   string  `json:"service,omitempty"`
}

// Scenario is a complete simulation description.
type Scenario struct {
	// Name labels the run.
	Name string `json:"name"`
	// Steps is the number of virtual-time steps (defaults to the last
	// event's step).
	Steps int `json:"steps,omitempty"`
	// SenderHost locates the content source (default "sender").
	SenderHost string `json:"senderHost,omitempty"`
	// Content is the shared source object.
	Content profile.Content `json:"content"`
	// Network is the initial overlay.
	Network profile.Network `json:"network"`
	// Intermediaries host the trans-coding services.
	Intermediaries []profile.Intermediary `json:"intermediaries"`
	// Users and Devices are the cast referenced by arrive events. A
	// device's ID must be a host on the network.
	Users   []profile.User   `json:"users"`
	Devices []profile.Device `json:"devices"`
	// Reserve enables bandwidth reservation (admission control).
	Reserve bool `json:"reserve,omitempty"`
	// Failover enables the session failover loop: broken chains
	// re-compose with quarantine and graceful degradation instead of
	// stalling on their last chain.
	Failover bool `json:"failover,omitempty"`
	// SatisfactionFloor is the failover sessions' minimum acceptable
	// satisfaction (see session.FailoverConfig).
	SatisfactionFloor float64 `json:"satisfactionFloor,omitempty"`
	// Events is the schedule.
	Events []Event `json:"events"`
}

// Validate checks the scenario's referential integrity.
func (sc *Scenario) Validate() error {
	if err := sc.Content.Validate(); err != nil {
		return err
	}
	if err := sc.Network.Validate(); err != nil {
		return err
	}
	users := make(map[string]bool, len(sc.Users))
	for i := range sc.Users {
		if err := sc.Users[i].Validate(); err != nil {
			return err
		}
		users[sc.Users[i].Name] = true
	}
	devices := make(map[string]bool, len(sc.Devices))
	for i := range sc.Devices {
		if err := sc.Devices[i].Validate(); err != nil {
			return err
		}
		devices[sc.Devices[i].ID] = true
	}
	for i := range sc.Intermediaries {
		if err := sc.Intermediaries[i].Validate(); err != nil {
			return err
		}
	}
	ids := make(map[string]bool)
	for i, ev := range sc.Events {
		if ev.AtStep < 1 {
			return fmt.Errorf("sim: event %d has step %d < 1", i, ev.AtStep)
		}
		switch ev.Kind {
		case "arrive":
			if ev.SessionID == "" {
				return fmt.Errorf("sim: event %d: arrive needs sessionId", i)
			}
			if ids[ev.SessionID] {
				return fmt.Errorf("sim: duplicate arrival of session %q", ev.SessionID)
			}
			ids[ev.SessionID] = true
			if !users[ev.User] {
				return fmt.Errorf("sim: event %d references unknown user %q", i, ev.User)
			}
			if !devices[ev.Device] {
				return fmt.Errorf("sim: event %d references unknown device %q", i, ev.Device)
			}
		case "depart":
			if ev.SessionID == "" {
				return fmt.Errorf("sim: event %d: depart needs sessionId", i)
			}
		case "bandwidth":
			if ev.From == "" || ev.To == "" || ev.Kbps < 0 {
				return fmt.Errorf("sim: event %d: bad bandwidth event", i)
			}
		case "removelink":
			if ev.From == "" || ev.To == "" {
				return fmt.Errorf("sim: event %d: bad removelink event", i)
			}
		case "hostdown", "hostup":
			if ev.Host == "" {
				return fmt.Errorf("sim: event %d: %s needs host", i, ev.Kind)
			}
		case "servicedown", "serviceup":
			if ev.Service == "" {
				return fmt.Errorf("sim: event %d: %s needs service", i, ev.Kind)
			}
		default:
			return fmt.Errorf("sim: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// LoadScenario reads and validates a JSON scenario.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("sim: decoding scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// StepReport aggregates one virtual-time step.
type StepReport struct {
	Step           int
	Active         int
	MeanSat        float64
	Recompositions int
	Rejections     int
	Departures     int
	Arrivals       int
	// Degraded counts active sessions running below their satisfaction
	// floor this step (failover scenarios only).
	Degraded int
}

// SessionTrace records one session's life.
type SessionTrace struct {
	ID         string
	User       string
	Device     string
	ArriveStep int
	DepartStep int // 0 while active at the end
	Rejected   bool
	FinalPath  string
	FinalSat   float64
	Samples    []session.Sample
}

// Report is the simulation outcome.
type Report struct {
	Name     string
	Steps    []StepReport
	Sessions []SessionTrace
	// Counters carries the failover metrics of a failover-enabled run
	// (nil otherwise).
	Counters *metrics.Counters
}

// DegradedSteps counts step/session pairs spent degraded.
func (r *Report) DegradedSteps() int {
	n := 0
	for _, s := range r.Steps {
		n += s.Degraded
	}
	return n
}

// MeanSatisfaction averages the per-step means over steps with sessions.
func (r *Report) MeanSatisfaction() float64 {
	sum, n := 0.0, 0
	for _, s := range r.Steps {
		if s.Active > 0 {
			sum += s.MeanSat
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalRejections counts arrivals that found no chain.
func (r *Report) TotalRejections() int {
	n := 0
	for _, s := range r.Steps {
		n += s.Rejections
	}
	return n
}

// active pairs a live session with its trace index.
type active struct {
	sess  *session.Session
	trace int
}

// Run executes the scenario.
func Run(sc *Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	net, err := overlay.FromProfile(sc.Network)
	if err != nil {
		return nil, err
	}
	senderHost := sc.SenderHost
	if senderHost == "" {
		senderHost = "sender"
	}
	usersByName := make(map[string]*profile.User, len(sc.Users))
	for i := range sc.Users {
		usersByName[sc.Users[i].Name] = &sc.Users[i]
	}
	devicesByID := make(map[string]*profile.Device, len(sc.Devices))
	for i := range sc.Devices {
		devicesByID[sc.Devices[i].ID] = &sc.Devices[i]
	}
	pool := graph.CollectServices(sc.Intermediaries)
	svcSet := fault.NewServiceSet(pool)
	var counters *metrics.Counters
	if sc.Failover {
		counters = metrics.NewCounters()
	}

	steps := sc.Steps
	for _, ev := range sc.Events {
		if ev.AtStep > steps {
			steps = ev.AtStep
		}
	}
	eventsAt := make(map[int][]Event)
	for _, ev := range sc.Events {
		eventsAt[ev.AtStep] = append(eventsAt[ev.AtStep], ev)
	}

	report := &Report{Name: sc.Name, Counters: counters}
	live := make(map[string]*active)
	order := []string{} // arrival order for deterministic iteration

	for step := 1; step <= steps; step++ {
		sr := StepReport{Step: step}
		for _, ev := range eventsAt[step] {
			switch ev.Kind {
			case "bandwidth":
				_ = net.SetBandwidth(ev.From, ev.To, ev.Kbps)
			case "removelink":
				net.RemoveLink(ev.From, ev.To)
			case "hostdown":
				_ = net.FailHost(ev.Host)
				svcSet.SetHostDown(ev.Host, true)
			case "hostup":
				_ = net.RecoverHost(ev.Host)
				svcSet.SetHostDown(ev.Host, false)
			case "servicedown":
				svcSet.SetServiceDown(service.ID(ev.Service), true)
			case "serviceup":
				svcSet.SetServiceDown(service.ID(ev.Service), false)
			case "depart":
				if a, ok := live[ev.SessionID]; ok {
					a.sess.Close()
					report.Sessions[a.trace].DepartStep = step
					delete(live, ev.SessionID)
					for i, id := range order {
						if id == ev.SessionID {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
					sr.Departures++
				}
			case "arrive":
				sr.Arrivals++
				user := usersByName[ev.User]
				device := devicesByID[ev.Device]
				satProfile, perr := user.SatisfactionProfile(profile.ContactAny)
				if perr != nil {
					return nil, perr
				}
				scfg := session.Config{
					Content:      &sc.Content,
					Device:       device,
					Services:     pool,
					Net:          net,
					SenderHost:   senderHost,
					ReceiverHost: device.ID,
					Select: core.Config{
						Profile:      satProfile,
						Budget:       user.Budget,
						ReceiverCaps: device.RenderCaps(),
					},
					ReserveBandwidth: sc.Reserve,
				}
				if sc.Failover {
					scfg.Pool = svcSet
					scfg.Failover = session.FailoverConfig{
						Enabled:           true,
						SatisfactionFloor: sc.SatisfactionFloor,
						// Virtual time: retries must not wall-clock sleep.
						Sleep:   func(time.Duration) {},
						Metrics: counters,
					}
				}
				sess, serr := session.New(scfg)
				trace := SessionTrace{
					ID: ev.SessionID, User: ev.User, Device: ev.Device,
					ArriveStep: step,
				}
				if serr != nil {
					trace.Rejected = true
					sr.Rejections++
					report.Sessions = append(report.Sessions, trace)
					continue
				}
				report.Sessions = append(report.Sessions, trace)
				live[ev.SessionID] = &active{sess: sess, trace: len(report.Sessions) - 1}
				order = append(order, ev.SessionID)
			}
		}

		// Re-evaluate every active session in arrival order.
		satSum := 0.0
		for _, id := range order {
			a := live[id]
			a.sess.Tick()
			changed, rerr := a.sess.Reevaluate()
			if rerr != nil {
				// A partitioned session keeps its last chain; count it
				// but do not abort the simulation.
				changed = false
			}
			if changed {
				sr.Recompositions++
			}
			if a.sess.Degraded() {
				sr.Degraded++
			}
			res := a.sess.Result()
			satSum += res.Satisfaction
			report.Sessions[a.trace].FinalPath = core.PathString(res.Path)
			report.Sessions[a.trace].FinalSat = res.Satisfaction
			report.Sessions[a.trace].Samples = append(report.Sessions[a.trace].Samples, session.Sample{
				Step:         step,
				Path:         core.PathString(res.Path),
				Satisfaction: res.Satisfaction,
				Recomposed:   changed,
				Degraded:     a.sess.Degraded(),
			})
		}
		sr.Active = len(order)
		if sr.Active > 0 {
			sr.MeanSat = satSum / float64(sr.Active)
		}
		report.Steps = append(report.Steps, sr)
	}

	// Close whatever is still running.
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		live[id].sess.Close()
	}
	return report, nil
}
