package sim

// cluster.go is the deterministic replicated-tier failover harness: it
// stands up a small cluster of composition nodes — real HTTP servers
// over real sockets, one hash-chained journal per node, WAL shipping to
// the rendezvous-elected follower — registers them in an in-process
// membership table under leases driven by a fake clock, creates Figure 6
// sessions through the routing tier, then kills one node mid-run and
// lets the router promote its follower.
//
// The contract it checks is the cluster analogue of crash.go's:
//
//   - the promoted replica's session state hashes are identical to the
//     hashes the dead primary last published — replication is
//     byte-exact, not approximate;
//   - after the promotion's host-crash fault and Reconcile, every
//     bandwidth hold of every adopted session sits on a usable link and
//     the overlay's reserved total equals what the sessions account for
//     — zero leaked kbps;
//   - the dead node's zombie shipper is fenced: a resurrected primary
//     cannot fork the adopted sessions;
//   - every adopted session remains reachable through the router, with
//     the dead node's host marked down.
//
// Everything derives from the seed (victim choice, session jitter), so
// a failing run reproduces exactly.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"qoschain/internal/cluster"
	"qoschain/internal/httpapi"
	"qoschain/internal/metrics"
	"qoschain/internal/registry"
	"qoschain/internal/trace"
)

// ClusterSpec configures one failover scenario.
type ClusterSpec struct {
	// StateRoot is the directory holding one journal tree per node (a
	// fresh temp dir per scenario).
	StateRoot string
	// Seed derives the victim choice and per-session jitter.
	Seed int64
	// Nodes is the cluster size (default 3).
	Nodes int
	// Sessions is how many Figure 6 sessions the run creates through
	// the router (default 6).
	Sessions int
	// SnapshotEvery compacts each primary journal this often (default
	// 4, small enough that late-joining followers exercise the snapshot
	// bootstrap path).
	SnapshotEvery int
	// Lease is the membership lease TTL on the fake clock (default 5s).
	Lease time.Duration
	// Counters, when set, receives the replication.*/cluster.* series —
	// a caller running several trials shares one sink so the closing
	// distributions aggregate the sweep.
	Counters *metrics.Counters
}

// ClusterReport is one scenario's outcome.
type ClusterReport struct {
	Seed     int64 `json:"seed"`
	Nodes    int   `json:"nodes"`
	Sessions int   `json:"sessions"`
	// Victim is the killed node, VictimHost its overlay host, Adopter
	// the follower the router promoted.
	Victim     string `json:"victim"`
	VictimHost string `json:"victimHost"`
	Adopter    string `json:"adopter"`
	// Adopted counts sessions taken over (the victim's primaries).
	Adopted int `json:"adopted"`
	// ShippedRecords is the journal record volume replicated cluster-wide
	// before the kill.
	ShippedRecords int64 `json:"shippedRecords"`
	// HashesIdentical reports the byte-identity check: the promotion
	// report's pre-fault state hashes against the hashes the victim
	// published before it was killed.
	HashesIdentical bool `json:"hashesIdentical"`
	// Recomposed/ReleasedKbps summarize the adopter's post-promotion
	// reconcile sweep.
	Recomposed   int     `json:"recomposed"`
	ReleasedKbps float64 `json:"releasedKbps"`
	// LeakKbps is reserved bandwidth no adopted session accounts for
	// after the sweep (must be 0).
	LeakKbps float64 `json:"leakKbps"`
	// RecoveryMs is the router-measured end-to-end promotion latency:
	// from deciding the node is dead to the adopter's reconcile done.
	RecoveryMs float64 `json:"recoveryMs"`
	// ZombieFenced reports that the dead node's shipper was refused
	// after the promotion.
	ZombieFenced bool `json:"zombieFenced"`
	// ServedAfterFailover counts adopted sessions the router still
	// serves (each must also list the victim's host as down).
	ServedAfterFailover int `json:"servedAfterFailover"`
	// Err describes a contract violation; empty means the scenario
	// passed.
	Err string `json:"err,omitempty"`
}

// OK reports whether the scenario upheld the failover contract.
func (r *ClusterReport) OK() bool {
	return r.Err == "" && r.Adopted > 0 && r.HashesIdentical &&
		r.LeakKbps == 0 && r.ZombieFenced && r.ServedAfterFailover == r.Adopted
}

// clusterNode is one running node: the in-process handle plus its HTTP
// server. The storm harness additionally gives each node its own
// metrics registry and tracer (nil in the plain failover harness).
type clusterNode struct {
	node   *cluster.Node
	srv    *http.Server
	ln     net.Listener
	member registry.Member
	reg    *metrics.Registry
	tracer *trace.Tracer
}

func (cn *clusterNode) close() {
	cn.srv.Close()  //nolint:errcheck
	cn.node.Close() //nolint:errcheck
}

// startClusterNode opens a node's journal tree and serves its cluster +
// session API on a loopback socket.
func startClusterNode(id, host, dir string, snapshotEvery int, counters *metrics.Counters) (*clusterNode, error) {
	n, err := cluster.NewNode(cluster.NodeConfig{
		ID: id, StateDir: dir, Host: host,
		SnapshotEvery: snapshotEvery, Counters: counters,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.Close() //nolint:errcheck
		return nil, err
	}
	api := httpapi.HandlerWithOptions(httpapi.Options{Sessions: n})
	srv := &http.Server{Handler: n.Handler(api)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return &clusterNode{
		node: n, srv: srv, ln: ln,
		member: registry.Member{ID: id, Addr: ln.Addr().String(), Host: host},
	}, nil
}

// chainHosts resolves which overlay hosts the composed Figure 6 chain
// actually routes through, in path order — the hosts whose death forces
// a failover re-composition.
func chainHosts(ctx context.Context) ([]string, error) {
	set := Figure6Set()
	plan, err := cluster.LocalPlanner{}.Plan(ctx, &set, "")
	if err != nil {
		return nil, fmt.Errorf("sim: planning figure 6 chain: %w", err)
	}
	hostOf := map[string]string{}
	for _, in := range set.Intermediaries {
		for _, svc := range in.Services {
			hostOf[string(svc.ID)] = in.Host
		}
	}
	var hosts []string
	seen := map[string]bool{}
	for _, hop := range plan.Path {
		if h, ok := hostOf[hop]; ok && !seen[h] {
			hosts = append(hosts, h)
			seen[h] = true
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sim: figure 6 chain has no intermediary hosts")
	}
	return hosts, nil
}

// shipRound pushes every primary's outstanding journal suffix to its
// rendezvous follower. Returns the number of records shipped.
func shipRound(ctx context.Context, nodes map[string]*clusterNode, members []registry.Member) (int, error) {
	total := 0
	for _, m := range members {
		cn := nodes[m.ID]
		if cn == nil {
			continue
		}
		follower, ok := cluster.FollowerOf(members, m.ID)
		if !ok {
			continue
		}
		cn.node.Shipper().SetPeer(follower)
		n, err := cn.node.Shipper().Ship(ctx)
		if err != nil {
			return total, fmt.Errorf("sim: %s shipping to %s: %w", m.ID, follower.ID, err)
		}
		total += n
	}
	return total, nil
}

// RunCluster executes one scenario: start, replicate, kill, promote,
// verify.
func RunCluster(spec ClusterSpec) (*ClusterReport, error) {
	if spec.Nodes <= 0 {
		spec.Nodes = 3
	}
	if spec.Sessions <= 0 {
		spec.Sessions = 6
	}
	if spec.SnapshotEvery == 0 {
		spec.SnapshotEvery = 4
	}
	if spec.Lease <= 0 {
		spec.Lease = 5 * time.Second
	}
	if spec.Counters == nil {
		spec.Counters = metrics.NewCounters()
	}
	rep := &ClusterReport{Seed: spec.Seed, Nodes: spec.Nodes}
	rng := rand.New(rand.NewSource(spec.Seed))
	ctx := context.Background()

	hosts, err := chainHosts(ctx)
	if err != nil {
		return rep, err
	}

	// Membership: an in-process lease table on a fake clock, so expiry
	// is deterministic. Every node's overlay host is one the composed
	// chain routes through — whichever node dies, its sessions must
	// re-compose around its host.
	clock := registry.NewFakeClock()
	reg := registry.NewWithClock(clock)

	nodes := map[string]*clusterNode{}
	defer func() {
		for _, cn := range nodes {
			cn.close()
		}
	}()
	var members []registry.Member
	for i := 1; i <= spec.Nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		host := hosts[(i-1)%len(hosts)]
		cn, err := startClusterNode(id, host, fmt.Sprintf("%s/%s", spec.StateRoot, id),
			spec.SnapshotEvery, spec.Counters)
		if err != nil {
			return rep, fmt.Errorf("sim: starting %s: %w", id, err)
		}
		nodes[id] = cn
		if err := reg.Join(cn.member, spec.Lease); err != nil {
			return rep, fmt.Errorf("sim: joining %s: %w", id, err)
		}
		members = append(members, cn.member)
	}

	// Routing tier: plans locally, proxies session traffic to owners.
	router := cluster.NewRouter(cluster.RouterConfig{
		Planner:  cluster.LocalPlanner{},
		Counters: spec.Counters,
	})
	router.UpdateMembers(ctx, reg.Members())
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	rsrv := &http.Server{Handler: router}
	go rsrv.Serve(rln) //nolint:errcheck
	defer rsrv.Close() //nolint:errcheck
	base := "http://" + rln.Addr().String()

	// Create sessions through the router, shipping between creates so
	// replication lag is sampled across the run rather than once.
	shippedBase := spec.Counters.Get(metrics.CounterReplicationShippedRecords)
	set := Figure6Set()
	var setBuf bytes.Buffer
	if err := set.Encode(&setBuf); err != nil {
		return rep, err
	}
	for i := 0; i < spec.Sessions; i++ {
		url := fmt.Sprintf("%s/v1/sessions?reserve=1&floor=0.3&seed=%d", base, spec.Seed+int64(i))
		resp, err := http.Post(url, "application/json", bytes.NewReader(setBuf.Bytes()))
		if err != nil {
			return rep, fmt.Errorf("sim: creating session %d: %w", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusCreated {
			return rep, fmt.Errorf("sim: creating session %d: %s: %s", i, resp.Status, body)
		}
		if _, err := shipRound(ctx, nodes, members); err != nil {
			return rep, err
		}
	}
	rep.Sessions = spec.Sessions
	rep.ShippedRecords = spec.Counters.Get(metrics.CounterReplicationShippedRecords) - shippedBase

	// Pick the victim and record the truth it last published: its
	// primary state hashes and the sessions it owns.
	victim := members[rng.Intn(len(members))]
	rep.Victim, rep.VictimHost = victim.ID, victim.Host
	preKill := nodes[victim.ID].node.Status()
	if preKill.Sessions == 0 {
		rep.Err = fmt.Sprintf("victim %s owned no sessions — round-robin placement broken", victim.ID)
		return rep, nil
	}

	// Kill: the HTTP server dies, the lease is never renewed again. The
	// node object stays alive as a zombie so its shipper can prove the
	// fence. Survivors renew, the clock rolls past the victim's expiry,
	// and the router reacts to the thinned membership.
	nodes[victim.ID].srv.Close() //nolint:errcheck
	clock.Advance(spec.Lease / 2)
	for _, m := range members {
		if m.ID != victim.ID {
			if err := reg.RenewMember(m.ID, spec.Lease); err != nil {
				return rep, fmt.Errorf("sim: renewing %s: %w", m.ID, err)
			}
		}
	}
	// Now the victim's original lease lapses while the renewed ones hold.
	clock.Advance(spec.Lease/2 + time.Second)
	live := reg.Members()
	if len(live) != spec.Nodes-1 {
		rep.Err = fmt.Sprintf("expected %d live members after expiry, got %d", spec.Nodes-1, len(live))
		return rep, nil
	}
	promotions := router.UpdateMembers(ctx, live)
	if len(promotions) != 1 {
		rep.Err = fmt.Sprintf("expected 1 promotion, got %d", len(promotions))
		return rep, nil
	}
	promo := promotions[0]
	if promo.Err != "" {
		rep.Err = fmt.Sprintf("promotion failed: %s", promo.Err)
		return rep, nil
	}
	rep.Adopter = promo.Adopter
	rep.RecoveryMs = promo.TookMs
	report := promo.Report
	rep.Adopted = report.Adopted
	if report.Reconcile != nil {
		rep.Recomposed = report.Reconcile.Recomposed
		rep.ReleasedKbps = report.Reconcile.ReleasedKbps
	}

	// Byte identity: the replica's pre-fault hashes must equal what the
	// dead primary last published, session for session.
	rep.HashesIdentical = len(report.StateHashes) == len(preKill.StateHashes)
	for id, h := range preKill.StateHashes {
		if report.StateHashes[id] != h {
			rep.HashesIdentical = false
		}
	}
	if !rep.HashesIdentical {
		rep.Err = fmt.Sprintf("adopted state diverged from the victim's published hashes\n got %v\nwant %v",
			report.StateHashes, preKill.StateHashes)
		return rep, nil
	}

	// Zero-leak audit on the adopter: every hold sits on a usable link
	// and the overlay total matches the session's accounting.
	adopter := nodes[promo.Adopter]
	var adoptedIDs []string
	for id := range preKill.StateHashes {
		adoptedIDs = append(adoptedIDs, id)
	}
	sort.Strings(adoptedIDs)
	for _, id := range adoptedIDs {
		ms, ok := adopter.node.Get(id)
		if !ok {
			rep.Err = fmt.Sprintf("adopter %s does not serve adopted session %s", promo.Adopter, id)
			return rep, nil
		}
		var held float64
		for _, r := range ms.Held() {
			if !ms.Net().Usable(r.From, r.To) {
				rep.Err = fmt.Sprintf("session %s holds %s->%s on an unusable link", id, r.From, r.To)
				return rep, nil
			}
			held += r.Kbps
		}
		rep.LeakKbps += ms.Net().TotalReservedKbps() - held
	}
	if rep.LeakKbps != 0 {
		rep.Err = fmt.Sprintf("leaked %.1f kbps of reservations", rep.LeakKbps)
		return rep, nil
	}

	// Fencing: the zombie primary's next ship must be refused.
	if _, err := nodes[victim.ID].node.Shipper().Ship(ctx); err == nil {
		rep.Err = "zombie shipper was accepted after promotion"
		return rep, nil
	}
	rep.ZombieFenced = nodes[victim.ID].node.Shipper().Fenced()
	if !rep.ZombieFenced {
		rep.Err = "zombie shipper rejected but not fenced"
		return rep, nil
	}

	// Routing: every adopted session is still reachable through the
	// router, with the victim's host marked down.
	for _, id := range adoptedIDs {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			return rep, fmt.Errorf("sim: routing adopted %s: %w", id, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			rep.Err = fmt.Sprintf("router lost adopted session %s: %s", id, resp.Status)
			return rep, nil
		}
		var st struct {
			DownHosts []string `json:"downHosts"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return rep, fmt.Errorf("sim: decoding adopted %s: %w", id, err)
		}
		if !contains(st.DownHosts, victim.Host) {
			rep.Err = fmt.Sprintf("adopted session %s does not mark host %s down (down: %s)",
				id, victim.Host, strings.Join(st.DownHosts, ","))
			return rep, nil
		}
		rep.ServedAfterFailover++
	}
	return rep, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
