package sim

import (
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// scenario builds a two-proxy deployment with two possible viewers.
func scenario() *Scenario {
	fast := service.FormatConverter("fast", media.VideoMPEG1, media.VideoH263)
	fast.Host = "proxy-fast"
	slow := service.FormatConverter("slow", media.VideoMPEG1, media.VideoH263)
	slow.Host = "proxy-slow"
	return &Scenario{
		Name: "test",
		Content: profile.Content{ID: "clip", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "proxy-fast", BandwidthKbps: 3000},
			{From: "proxy-fast", To: "dev-1", BandwidthKbps: 3000},
			{From: "proxy-fast", To: "dev-2", BandwidthKbps: 3000},
			{From: "sender", To: "proxy-slow", BandwidthKbps: 1500},
			{From: "proxy-slow", To: "dev-1", BandwidthKbps: 1500},
			{From: "proxy-slow", To: "dev-2", BandwidthKbps: 1500},
		}},
		Intermediaries: []profile.Intermediary{
			{Host: "proxy-fast", CPUMips: 10000, MemoryMB: 1024, Services: []*service.Service{fast}},
			{Host: "proxy-slow", CPUMips: 10000, MemoryMB: 1024, Services: []*service.Service{slow}},
		},
		Users: []profile.User{{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		}},
		Devices: []profile.Device{
			{ID: "dev-1", Software: profile.Software{Decoders: []media.Format{media.VideoH263}}},
			{ID: "dev-2", Software: profile.Software{Decoders: []media.Format{media.VideoH263}}},
		},
	}
}

func TestRunBasicLifecycle(t *testing.T) {
	sc := scenario()
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "arrive", SessionID: "s2", User: "alice", Device: "dev-2"},
		{AtStep: 4, Kind: "depart", SessionID: "s1"},
	}
	sc.Steps = 5
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	if rep.Steps[0].Active != 1 || rep.Steps[1].Active != 2 {
		t.Errorf("active counts = %d, %d", rep.Steps[0].Active, rep.Steps[1].Active)
	}
	if rep.Steps[3].Active != 1 || rep.Steps[3].Departures != 1 {
		t.Errorf("step 4 = %+v", rep.Steps[3])
	}
	if len(rep.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(rep.Sessions))
	}
	if rep.Sessions[0].DepartStep != 4 {
		t.Errorf("s1 depart step = %d", rep.Sessions[0].DepartStep)
	}
	if rep.Sessions[1].DepartStep != 0 {
		t.Errorf("s2 should still be active, depart = %d", rep.Sessions[1].DepartStep)
	}
	if rep.MeanSatisfaction() != 1 {
		t.Errorf("mean satisfaction = %v (fast path fits everyone without reservation)", rep.MeanSatisfaction())
	}
}

func TestRunReservationContention(t *testing.T) {
	sc := scenario()
	sc.Reserve = true
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "arrive", SessionID: "s2", User: "alice", Device: "dev-2"},
		{AtStep: 4, Kind: "depart", SessionID: "s1"},
	}
	sc.Steps = 5
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// s1 reserves the fast path fully; s2 must use the slow proxy.
	if rep.Sessions[1].Samples[0].Path != "sender,slow,receiver" {
		t.Errorf("s2 first path = %s", rep.Sessions[1].Samples[0].Path)
	}
	if rep.Sessions[1].Samples[0].Satisfaction >= 1 {
		t.Error("contended s2 should be degraded")
	}
	// After s1 departs at step 4, s2 upgrades.
	last := rep.Sessions[1].Samples[len(rep.Sessions[1].Samples)-1]
	if last.Satisfaction != 1 || last.Path != "sender,fast,receiver" {
		t.Errorf("s2 should upgrade after departure: %+v", last)
	}
	upgraded := false
	for _, s := range rep.Steps {
		if s.Recompositions > 0 {
			upgraded = true
		}
	}
	if !upgraded {
		t.Error("the departure should trigger a recomposition")
	}
}

func TestRunBandwidthEventForcesSwitch(t *testing.T) {
	sc := scenario()
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "bandwidth", From: "sender", To: "proxy-fast", Kbps: 300},
	}
	sc.Steps = 3
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions[0].Samples[0].Path != "sender,fast,receiver" {
		t.Fatalf("initial path = %s", rep.Sessions[0].Samples[0].Path)
	}
	after := rep.Sessions[0].Samples[1]
	if after.Path != "sender,slow,receiver" || !after.Recomposed {
		t.Errorf("after collapse: %+v", after)
	}
}

func TestRunRemoveLinkRejectsNewcomer(t *testing.T) {
	sc := scenario()
	sc.Events = []Event{
		{AtStep: 1, Kind: "removelink", From: "sender", To: "proxy-fast"},
		{AtStep: 1, Kind: "removelink", From: "sender", To: "proxy-slow"},
		{AtStep: 2, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRejections() != 1 {
		t.Errorf("rejections = %d, want 1", rep.TotalRejections())
	}
	if !rep.Sessions[0].Rejected {
		t.Error("session trace should be marked rejected")
	}
}

func TestScenarioValidation(t *testing.T) {
	base := scenario()
	cases := []func(*Scenario){
		func(s *Scenario) {
			s.Events = []Event{{AtStep: 0, Kind: "arrive", SessionID: "x", User: "alice", Device: "dev-1"}}
		},
		func(s *Scenario) { s.Events = []Event{{AtStep: 1, Kind: "arrive", User: "alice", Device: "dev-1"}} },
		func(s *Scenario) {
			s.Events = []Event{{AtStep: 1, Kind: "arrive", SessionID: "x", User: "ghost", Device: "dev-1"}}
		},
		func(s *Scenario) {
			s.Events = []Event{{AtStep: 1, Kind: "arrive", SessionID: "x", User: "alice", Device: "ghost"}}
		},
		func(s *Scenario) { s.Events = []Event{{AtStep: 1, Kind: "explode"}} },
		func(s *Scenario) { s.Events = []Event{{AtStep: 1, Kind: "bandwidth", From: "a"}} },
		func(s *Scenario) { s.Events = []Event{{AtStep: 1, Kind: "depart"}} },
		func(s *Scenario) {
			s.Events = []Event{
				{AtStep: 1, Kind: "arrive", SessionID: "dup", User: "alice", Device: "dev-1"},
				{AtStep: 2, Kind: "arrive", SessionID: "dup", User: "alice", Device: "dev-2"},
			}
		},
	}
	for i, mutate := range cases {
		sc := scenario()
		mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base scenario invalid: %v", err)
	}
}

func TestLoadScenarioJSON(t *testing.T) {
	jsonDoc := `{
	  "name": "mini",
	  "content": {"id": "c", "variants": [{"Format":{"Kind":1,"Encoding":"mpeg1"},"Params":{"framerate":30}}]},
	  "network": {"links": [{"from":"sender","to":"dev-1","bandwidthKbps":2000}]},
	  "users": [{"name":"u","preferences":{"framerate":{"shape":"linear","ideal":30}}}],
	  "devices": [{"id":"dev-1","hardware":{"cpuMips":100,"memoryMB":16},
	               "software":{"decoders":[{"Kind":1,"Encoding":"mpeg1"}]}}],
	  "events": [{"atStep":1,"kind":"arrive","sessionId":"s1","user":"u","device":"dev-1"}]
	}`
	sc, err := LoadScenario(strings.NewReader(jsonDoc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 1 || rep.Sessions[0].Rejected {
		t.Errorf("sessions = %+v", rep.Sessions)
	}
	// 2000 kbps direct link → 20 fps → 2/3.
	if s := rep.Sessions[0].FinalSat; s < 0.66 || s > 0.67 {
		t.Errorf("final sat = %v", s)
	}
}

func TestLoadScenarioRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadScenario(strings.NewReader(`{"bogusField": 1}`)); err == nil {
		t.Error("unknown fields should fail")
	}
}

func TestRenderMarkdown(t *testing.T) {
	sc := scenario()
	sc.Reserve = true
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "arrive", SessionID: "s2", User: "alice", Device: "dev-2"},
		{AtStep: 3, Kind: "depart", SessionID: "s1"},
	}
	sc.Steps = 4
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Simulation report: test",
		"## Per-step",
		"## Per-session",
		"## Timelines",
		"| s1 |", "| s2 |",
		"sender,fast,receiver",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Rejected sessions render distinctly.
	sc2 := scenario()
	sc2.Events = []Event{
		{AtStep: 1, Kind: "removelink", From: "sender", To: "proxy-fast"},
		{AtStep: 1, Kind: "removelink", From: "sender", To: "proxy-slow"},
		{AtStep: 2, Kind: "arrive", SessionID: "sx", User: "alice", Device: "dev-1"},
	}
	rep2, err := Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := rep2.RenderMarkdown(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "*(rejected)*") {
		t.Error("rejected session should be marked in the report")
	}
}

func TestRunHostCrashFailsOverAndRecovers(t *testing.T) {
	sc := scenario()
	sc.Failover = true
	sc.SatisfactionFloor = 0.3
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 3, Kind: "hostdown", Host: "proxy-fast"},
		{AtStep: 6, Kind: "hostup", Host: "proxy-fast"},
	}
	sc.Steps = 8
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	samples := rep.Sessions[0].Samples
	if samples[1].Path != "sender,fast,receiver" {
		t.Errorf("pre-crash path = %s", samples[1].Path)
	}
	// Steps 3-5: proxy-fast is down, the session must survive on slow.
	if samples[3].Path != "sender,slow,receiver" {
		t.Errorf("mid-outage path = %s", samples[3].Path)
	}
	// After recovery the session returns to the fast chain.
	if samples[7].Path != "sender,fast,receiver" || samples[7].Satisfaction != 1 {
		t.Errorf("post-recovery sample = %+v", samples[7])
	}
	if rep.Counters == nil || rep.Counters.Get(metrics.CounterFailovers) == 0 {
		t.Error("failover metrics must be recorded")
	}
}

func TestRunServiceChurnEvents(t *testing.T) {
	sc := scenario()
	sc.Failover = true
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "servicedown", Service: "fast"},
		{AtStep: 5, Kind: "serviceup", Service: "fast"},
	}
	sc.Steps = 7
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	samples := rep.Sessions[0].Samples
	if samples[2].Path != "sender,slow,receiver" {
		t.Errorf("path with fast deregistered = %s", samples[2].Path)
	}
	if samples[6].Path != "sender,fast,receiver" {
		t.Errorf("path after re-registration = %s", samples[6].Path)
	}
}

func TestRunUnrecoverableOutageDegradesNotAborts(t *testing.T) {
	sc := scenario()
	sc.Failover = true
	sc.SatisfactionFloor = 0.3
	sc.Events = []Event{
		{AtStep: 1, Kind: "arrive", SessionID: "s1", User: "alice", Device: "dev-1"},
		{AtStep: 2, Kind: "hostdown", Host: "proxy-fast"},
		{AtStep: 2, Kind: "hostdown", Host: "proxy-slow"},
	}
	sc.Steps = 4
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradedSteps() == 0 {
		t.Error("total outage must show degraded steps")
	}
	last := rep.Sessions[0].Samples[3]
	if !last.Degraded {
		t.Errorf("final sample = %+v", last)
	}
}

func TestScenarioValidatesFaultEvents(t *testing.T) {
	sc := scenario()
	sc.Events = []Event{{AtStep: 1, Kind: "hostdown"}}
	if err := sc.Validate(); err == nil {
		t.Error("hostdown without host must fail validation")
	}
	sc.Events = []Event{{AtStep: 1, Kind: "serviceup"}}
	if err := sc.Validate(); err == nil {
		t.Error("serviceup without service must fail validation")
	}
}
