package sim

import (
	"testing"

	"qoschain/internal/metrics"
)

// TestRunStormSmall is the scaled-down EXT-O scenario: the storm
// contract (sub-linear Select cost, zero leak, naive equivalence) must
// hold at any population, not only at the pinned 100k run.
func TestRunStormSmall(t *testing.T) {
	counters := metrics.NewCounters()
	rep, err := RunStorm(StormSpec{
		Seed:     7,
		Sessions: 1200,
		Regions:  2,
		Verify:   true,
		Counters: counters,
	})
	if err != nil {
		t.Fatalf("RunStorm: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("storm contract violated: %+v", rep)
	}
	if rep.Sessions != 1200 {
		t.Fatalf("Sessions = %d, want 1200", rep.Sessions)
	}
	if rep.BackboneLinks == 0 || rep.AffectedClasses == 0 {
		t.Fatalf("backbone event did not land: %+v", rep)
	}
	// Plan-once: never more Selects than affected classes.
	if rep.SelectCalls > rep.AffectedClasses {
		t.Fatalf("SelectCalls = %d > AffectedClasses = %d", rep.SelectCalls, rep.AffectedClasses)
	}
	if rep.NaiveChecks != rep.AffectedSessions {
		t.Fatalf("NaiveChecks = %d, want one per affected session (%d)",
			rep.NaiveChecks, rep.AffectedSessions)
	}
	if rep.CacheRepairs == 0 {
		t.Fatal("storm never exercised incremental graph repair")
	}
	if got := counters.Get(metrics.CounterStormSelectCalls); got != int64(rep.SelectCalls) {
		t.Fatalf("storm.select_calls = %d, report says %d", got, rep.SelectCalls)
	}
}

// TestRunStormDeterministic pins the seed → outcome mapping the EXT-O
// experiment relies on.
func TestRunStormDeterministic(t *testing.T) {
	run := func() *StormReport {
		rep, err := RunStorm(StormSpec{Seed: 11, Sessions: 400, Regions: 2})
		if err != nil {
			t.Fatalf("RunStorm: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.SelectCalls != b.SelectCalls || a.Replanned != b.Replanned ||
		a.AffectedSessions != b.AffectedSessions || a.DegradedSessions != b.DegradedSessions {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
