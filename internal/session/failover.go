package session

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/metrics"
	"qoschain/internal/service"
	"qoschain/internal/trace"
)

// ServicePool is a live view over the deployed services — typically a
// *fault.ServiceSet. When a session has one, it composes against
// Alive() instead of the static Config.Services list, so crashed hosts
// and deregistered services drop out of candidate chains immediately.
type ServicePool interface {
	Alive() []*service.Service
}

// FailoverConfig tunes the session's failure handling. The zero value
// disables failover entirely, preserving the strict error-returning
// behavior of plain sessions.
type FailoverConfig struct {
	// Enabled turns the failover loop on.
	Enabled bool
	// MaxRetries bounds re-composition attempts per failover (beyond
	// the first try). Default 4.
	MaxRetries int
	// BaseBackoff is the first retry's delay; it doubles per attempt up
	// to MaxBackoff, with jitter. Defaults 50ms and 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter draws (0 uses seed 1) so
	// chaos runs replay identically.
	JitterSeed int64
	// Sleep replaces time.Sleep between retries — tests and the
	// virtual-time simulator inject a no-op recorder here.
	Sleep func(time.Duration)
	// QuarantineSteps is how many session ticks a failed host or
	// service stays excluded from composition after a failure was
	// pinned on it. Default 8.
	QuarantineSteps int
	// SatisfactionFloor is the minimum acceptable satisfaction for a
	// recovered chain. Below it the session degrades gracefully:
	// retries first, then adopts the best below-floor chain rather than
	// dying. 0 accepts anything.
	SatisfactionFloor float64
	// Metrics receives failover counters; nil is a valid no-op sink.
	Metrics *metrics.Counters
}

// Reevaluate reason tokens: who asked for a re-composition. They are
// journaled with the reevaluate command and appended to
// metrics.CounterReevalPrefix, so the failover.* series tell a
// storm-driven mass re-plan apart from a client request or a
// fault-recovery sweep.
const (
	// ReevalManual marks client- or driver-requested re-evaluations.
	ReevalManual = "manual"
	// ReevalFault marks re-evaluations forced by fault handling (the
	// post-recovery Reconcile sweep, dead-link cleanup).
	ReevalFault = "fault"
	// ReevalStorm marks re-evaluations driven by the storm controller's
	// class fan-out.
	ReevalStorm = "storm"
)

// NoteReevaluateReason attributes the next re-evaluation to its driver
// in the failover.* metrics. An empty reason records nothing — that is
// what replaying a journal from before reasons existed produces, so
// live and replayed counter state stay byte-identical.
func (s *Session) NoteReevaluateReason(reason string) {
	if reason == "" {
		return
	}
	s.cfg.Failover.Metrics.Inc(metrics.CounterReevalPrefix + reason)
}

// FailoverStatus is the externally visible failure-handling state.
type FailoverStatus struct {
	// Enabled mirrors the config.
	Enabled bool `json:"enabled"`
	// Degraded is true while the session runs below its satisfaction
	// floor (or with no viable chain at all).
	Degraded bool `json:"degraded"`
	// Failovers and Retries count loop entries and retry attempts.
	Failovers int `json:"failovers"`
	Retries   int `json:"retries"`
	// Quarantined lists active exclusions ("host:p3", "svc:t7"), sorted.
	Quarantined []string `json:"quarantined,omitempty"`
	// LastError describes the most recent unrecovered failure, if any.
	LastError string `json:"lastError,omitempty"`
}

func (fc *FailoverConfig) maxRetries() int {
	if fc.MaxRetries > 0 {
		return fc.MaxRetries
	}
	return 4
}

func (fc *FailoverConfig) baseBackoff() time.Duration {
	if fc.BaseBackoff > 0 {
		return fc.BaseBackoff
	}
	return 50 * time.Millisecond
}

func (fc *FailoverConfig) maxBackoff() time.Duration {
	if fc.MaxBackoff > 0 {
		return fc.MaxBackoff
	}
	return time.Second
}

func (fc *FailoverConfig) quarantineSteps() int {
	if fc.QuarantineSteps > 0 {
		return fc.QuarantineSteps
	}
	return 8
}

// Tick advances the session's virtual clock one step and re-admits
// quarantined hosts and services whose sentence has expired. Drive loops
// and the simulator call it once per step.
func (s *Session) Tick() {
	s.step++
	for key, until := range s.quarantine {
		if until <= s.step {
			delete(s.quarantine, key)
		}
	}
}

// CurrentStep returns the session's virtual clock.
func (s *Session) CurrentStep() int { return s.step }

// QuarantineHost excludes a host's services from composition for the
// configured number of ticks.
func (s *Session) QuarantineHost(host string) {
	s.quarantineKey("host:" + host)
}

// QuarantineService excludes one service from composition for the
// configured number of ticks.
func (s *Session) QuarantineService(id service.ID) {
	s.quarantineKey("svc:" + string(id))
}

func (s *Session) quarantineKey(key string) {
	if s.quarantine == nil {
		s.quarantine = make(map[string]int)
	}
	if _, already := s.quarantine[key]; !already {
		s.cfg.Failover.Metrics.Inc(metrics.CounterQuarantined)
	}
	s.quarantine[key] = s.step + s.cfg.Failover.quarantineSteps()
}

// Quarantined returns the active exclusions, sorted.
func (s *Session) Quarantined() []string {
	out := make([]string, 0, len(s.quarantine))
	for key := range s.quarantine {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Degraded reports whether the session is running below its
// satisfaction floor (or without a viable fresh chain).
func (s *Session) Degraded() bool { return s.degraded }

// FailoverStatus snapshots the failure-handling state.
func (s *Session) FailoverStatus() FailoverStatus {
	st := FailoverStatus{
		Enabled:     s.cfg.Failover.Enabled,
		Degraded:    s.degraded,
		Failovers:   s.failovers,
		Retries:     s.retries,
		Quarantined: s.Quarantined(),
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// liveServices returns the composition candidates: the live pool (when
// attached) minus quarantined hosts and services.
func (s *Session) liveServices() []*service.Service {
	svcs := s.cfg.Services
	if s.cfg.Pool != nil {
		svcs = s.cfg.Pool.Alive()
	}
	if len(s.quarantine) == 0 {
		return svcs
	}
	out := make([]*service.Service, 0, len(svcs))
	for _, svc := range svcs {
		if s.quarantine["host:"+svc.Host] > s.step {
			continue
		}
		if s.quarantine["svc:"+string(svc.ID)] > s.step {
			continue
		}
		out = append(out, svc)
	}
	return out
}

// OnStageFailure reacts to a pipeline StageFailure: the culprit service
// (and its host) is quarantined and the session fails over. Link and
// sender-side stages trigger failover without quarantine — the overlay
// already reflects link failures. The stage argument is the failing
// element's ID as reported by pipeline.StageFailure.Stage. It returns
// whether the session switched chains.
func (s *Session) OnStageFailure(stage string) (bool, error) {
	if !strings.HasPrefix(stage, "link:") && !strings.HasPrefix(stage, "shaper:") {
		id := service.ID(stage)
		s.QuarantineService(id)
		for _, svc := range s.cfg.Services {
			if svc.ID == id && svc.Host != "" {
				s.QuarantineHost(svc.Host)
				break
			}
		}
	}
	if !s.cfg.Failover.Enabled {
		return s.Reevaluate()
	}
	if s.cfg.ReserveBandwidth {
		s.releaseCurrent()
		defer s.reserveCurrent() //nolint:errcheck // degraded sessions may not fit; tracked via lastErr
	}
	return s.failover(fmt.Errorf("session: stage %s failed", stage))
}

// failover is the bounded-retry re-composition loop. It never returns a
// hard error and never blocks indefinitely: it retries with exponential
// backoff and jitter, prefers any chain clearing the satisfaction floor,
// then degrades gracefully to the best below-floor chain, and as a last
// resort keeps the previous chain in a degraded state (a total partition
// leaves nothing better to stream over).
func (s *Session) failover(cause error) (bool, error) {
	fc := &s.cfg.Failover
	m := fc.Metrics
	m.Inc(metrics.CounterFailovers)
	s.failovers++
	if !s.degraded {
		s.degraded = true
		s.downSince = s.step
		m.Inc(metrics.CounterDegraded)
	}
	s.lastErr = cause

	sleep := fc.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	if s.jitter == nil {
		seed := fc.JitterSeed
		if seed == 0 {
			seed = 1
		}
		s.jitter = rand.New(rand.NewSource(seed))
	}

	var best *core.Result // best below-floor candidate seen
	backoff := fc.baseBackoff()
	for attempt := 0; attempt <= fc.maxRetries(); attempt++ {
		if attempt > 0 {
			m.Inc(metrics.CounterRetries)
			s.retries++
			// Full jitter: sleep a uniform fraction of the current
			// backoff, then double it.
			d := time.Duration(s.jitter.Int63n(int64(backoff))) + backoff/2
			sleep(d)
			if backoff *= 2; backoff > fc.maxBackoff() {
				backoff = fc.maxBackoff()
			}
		}
		sp := s.tr.StartSpan("failover.attempt", trace.Int("attempt", attempt))
		res, err := s.composeWith(s.liveServices(), fc.SatisfactionFloor)
		if err == nil {
			sp.End(trace.Str("outcome", "recovered"))
			s.adoptFailover(res, "failover", attempt)
			return true, nil
		}
		if errors.Is(err, core.ErrBelowFloor) && res != nil && res.Found {
			sp.End(trace.Str("outcome", "below_floor"))
			if best == nil || res.Satisfaction > best.Satisfaction {
				best = res
			}
		} else {
			sp.End(trace.Str("outcome", "error"))
		}
		s.lastErr = err
	}

	// Retry budget exhausted: graceful degradation. Adopt the best
	// below-floor chain if any composition produced one — relaxing
	// toward the minimum acceptable values rather than dying.
	if best != nil {
		s.recordChange("failover-degraded", best)
		s.degraded = true
		return true, nil
	}
	// Nothing composes at all (total partition): keep the last chain.
	return false, nil
}

// adoptFailover installs a recovered chain and closes out the outage
// bookkeeping.
func (s *Session) adoptFailover(res *core.Result, reason string, attempt int) {
	m := s.cfg.Failover.Metrics
	s.recordChange(reason, res)
	m.Inc(metrics.CounterRecovered)
	m.Observe(metrics.SampleRecoveryRetries, float64(attempt))
	if s.degraded {
		m.Observe(metrics.SampleRecoverySteps, float64(s.step-s.downSince))
		s.degraded = false
	}
	s.lastErr = nil
}

// recordChange appends to history and swaps the current chain.
func (s *Session) recordChange(reason string, res *core.Result) {
	from := ""
	if s.current != nil {
		from = core.PathString(s.current.Path)
	}
	s.history = append(s.history, Change{
		Reason:       reason,
		From:         from,
		To:           core.PathString(res.Path),
		Satisfaction: res.Satisfaction,
	})
	s.current = res
}
