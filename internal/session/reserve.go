package session

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/trace"
)

// Bandwidth reservation: when Config.ReserveBandwidth is set, an admitted
// session holds its chain's bitrate on every inter-host link it crosses,
// so concurrent sessions see only the remaining capacity — the admission
// control a shared proxy infrastructure needs. The hold is taken with
// overlay.ReserveChain, atomically across the whole chain: a session that
// would oversubscribe any link is rejected before activation, with
// nothing to roll back, and the typed overlay.ErrInsufficientCapacity
// surfaces to callers (httpapi maps it to 503). Failover re-composition
// releases the old chain's holds and re-reserves the new chain's.

// chainBitrate is the bandwidth the current chain's delivered parameters
// require.
func (s *Session) chainBitrate() float64 {
	model := s.cfg.Select.Bitrate
	if model == nil {
		model = media.DefaultBitrate
	}
	return model.RequiredKbps(s.current.Params)
}

// reserveCurrent atomically holds the chain's bitrate on each
// consecutive host pair. On an oversubscribed link nothing is held and
// the typed capacity error is reported.
func (s *Session) reserveCurrent() error {
	if s.current == nil || !s.current.Found {
		return nil
	}
	kbps := s.chainBitrate()
	if kbps <= 0 {
		return nil
	}
	hosts := s.Hosts()
	rs := make([]overlay.Reservation, 0, len(hosts)-1)
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] == hosts[i] {
			continue
		}
		rs = append(rs, overlay.Reservation{From: hosts[i-1], To: hosts[i], Kbps: kbps})
	}
	if len(rs) == 0 {
		return nil
	}
	sp := s.tr.StartSpan("session.reserve", trace.Int("links", len(rs)))
	if err := s.cfg.Net.ReserveChain(rs); err != nil {
		sp.End(trace.Str("outcome", "rejected"))
		s.cfg.Failover.Metrics.Inc(metrics.CounterCapacityRejected)
		return fmt.Errorf("session: admitting chain: %w", err)
	}
	sp.End(trace.Str("outcome", "reserved"))
	s.held = rs
	s.cfg.Failover.Metrics.Observe(metrics.SampleReservedKbps, kbps)
	return nil
}

// releaseCurrent returns every held reservation.
func (s *Session) releaseCurrent() {
	if len(s.held) == 0 {
		return
	}
	s.cfg.Net.ReleaseChain(s.held)
	s.held = nil
}

// Close releases the session's reservations; the session must not be
// used afterwards.
func (s *Session) Close() {
	s.releaseCurrent()
}

// Held returns the session's live reservations as taken (one entry per
// hop, not aggregated per link) — the shares recovery must re-establish
// or release after a restart.
func (s *Session) Held() []overlay.Reservation {
	return append([]overlay.Reservation(nil), s.held...)
}

// Reserved reports the bandwidth currently held per link (links a chain
// crosses twice report the summed share).
func (s *Session) Reserved() map[string]float64 {
	out := make(map[string]float64, len(s.held))
	for _, r := range s.held {
		out[r.From+"->"+r.To] += r.Kbps
	}
	return out
}
