package session

import (
	"fmt"

	"qoschain/internal/media"
)

// Bandwidth reservation: when Config.ReserveBandwidth is set, an admitted
// session holds its chain's bitrate on every inter-host link it crosses,
// so concurrent sessions see only the remaining capacity — the admission
// control a shared proxy infrastructure needs.

// reservation is one held link share.
type reservation struct {
	from, to string
	kbps     float64
}

// chainBitrate is the bandwidth the current chain's delivered parameters
// require.
func (s *Session) chainBitrate() float64 {
	model := s.cfg.Select.Bitrate
	if model == nil {
		model = media.DefaultBitrate
	}
	return model.RequiredKbps(s.current.Params)
}

// reserveCurrent holds the chain's bitrate on each distinct consecutive
// host pair. On failure it rolls back what it reserved and reports the
// conflict.
func (s *Session) reserveCurrent() error {
	if s.current == nil || !s.current.Found {
		return nil
	}
	kbps := s.chainBitrate()
	if kbps <= 0 {
		return nil
	}
	hosts := s.Hosts()
	var made []reservation
	for i := 1; i < len(hosts); i++ {
		from, to := hosts[i-1], hosts[i]
		if from == to {
			continue
		}
		if err := s.cfg.Net.Reserve(from, to, kbps); err != nil {
			for _, r := range made {
				s.cfg.Net.Release(r.from, r.to, r.kbps)
			}
			return fmt.Errorf("session: admitting chain: %w", err)
		}
		made = append(made, reservation{from, to, kbps})
	}
	s.held = made
	return nil
}

// releaseCurrent returns every held reservation.
func (s *Session) releaseCurrent() {
	for _, r := range s.held {
		s.cfg.Net.Release(r.from, r.to, r.kbps)
	}
	s.held = nil
}

// Close releases the session's reservations; the session must not be
// used afterwards.
func (s *Session) Close() {
	s.releaseCurrent()
}

// Reserved reports the bandwidth currently held per link.
func (s *Session) Reserved() map[string]float64 {
	out := make(map[string]float64, len(s.held))
	for _, r := range s.held {
		out[r.from+"->"+r.to] = r.kbps
	}
	return out
}
