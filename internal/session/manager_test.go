package session

import (
	"errors"
	"strings"
	"testing"

	"qoschain/internal/fault"
	"qoschain/internal/journal"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// managerSet is a two-proxy deployment: either proxy can convert the
// MPEG-1 source to the H.263 the device decodes, so failover
// re-composition has a live alternative when one proxy dies.
func managerSet() profile.Set {
	return profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content: profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2400},
			{From: "p1", To: "d", BandwidthKbps: 1800},
			{From: "sender", To: "p2", BandwidthKbps: 2400},
			{From: "p2", To: "d", BandwidthKbps: 1800},
		}},
		Intermediaries: []profile.Intermediary{
			{
				Host: "p1", CPUMips: 1000, MemoryMB: 256,
				Services: []*service.Service{
					service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263),
				},
			},
			{
				Host: "p2", CPUMips: 800, MemoryMB: 256,
				Services: []*service.Service{
					service.FormatConverter("conv2", media.VideoMPEG1, media.VideoH263),
				},
			},
		},
	}
}

func newPersistent(t *testing.T, dir string, opts ManagerConfig) *Manager {
	t.Helper()
	opts.StateDir = dir
	m, err := NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// fingerprints snapshots every session's canonical state, keyed by ID.
func fingerprints(t *testing.T, m *Manager) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, ms := range m.List() {
		fp, err := ms.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint %s: %v", ms.ID(), err)
		}
		out[ms.ID()] = fp
	}
	return out
}

func TestManagerRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newPersistent(t, dir, ManagerConfig{})

	ms, err := m.Create(CreateSpec{Set: managerSet(), Floor: 0.3, Seed: 7, Reserve: true})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if ms.ID() != "s1" {
		t.Fatalf("id = %q, want s1", ms.ID())
	}
	ms2, err := m.Create(CreateSpec{Set: managerSet(), Seed: 11})
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	// Crash s1's primary proxy and push it through failover.
	if err := ms.ApplyFault(fault.Fault{Kind: fault.HostCrash, Host: "p1"}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if _, _, logErr := ms.Reevaluate(); logErr != nil {
		t.Fatalf("reevaluate log: %v", logErr)
	}
	if _, _, logErr := ms2.Reevaluate(); logErr != nil {
		t.Fatalf("reevaluate 2 log: %v", logErr)
	}
	// Delete the second session entirely.
	if ok, err := m.Delete(ms2.ID()); !ok || err != nil {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	want := fingerprints(t, m)
	wantReserved := ms.Net().TotalReservedKbps()
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2 := newPersistent(t, dir, ManagerConfig{})
	defer m2.Close()
	got := fingerprints(t, m2)
	if len(got) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(got))
	}
	if got["s1"] != want["s1"] {
		t.Errorf("recovered state diverged:\n got %s\nwant %s", got["s1"], want["s1"])
	}
	r1, _ := m2.Get("s1")
	if r := r1.Net().TotalReservedKbps(); r != wantReserved {
		t.Errorf("recovered reservations = %v kbps, want %v", r, wantReserved)
	}
	// The ID counter must resume past replayed sessions, even deleted ones.
	ms3, err := m2.Create(CreateSpec{Set: managerSet()})
	if err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
	if ms3.ID() != "s3" {
		t.Errorf("post-recovery id = %q, want s3", ms3.ID())
	}
}

func TestManagerDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	m := newPersistent(t, dir, ManagerConfig{})
	if _, err := m.Create(CreateSpec{Set: managerSet(), Reserve: true}); err != nil {
		t.Fatal(err)
	}
	ms, _ := m.Get("s1")
	if err := ms.ApplyFault(fault.Fault{Kind: fault.LinkDown, From: "p1", To: "d"}); err != nil {
		t.Fatal(err)
	}
	ms.Reevaluate()
	want := fingerprints(t, m)
	m.Close()

	for i := 0; i < 2; i++ {
		mi := newPersistent(t, dir, ManagerConfig{})
		if got := fingerprints(t, mi); got["s1"] != want["s1"] {
			t.Fatalf("replay %d diverged:\n got %s\nwant %s", i, got["s1"], want["s1"])
		}
		mi.Close() // snapshots on close; next open replays from the snapshot
	}
}

func TestManagerSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	counters := metrics.NewCounters()
	m := newPersistent(t, dir, ManagerConfig{SnapshotEvery: 3, Counters: counters})
	if _, err := m.Create(CreateSpec{Set: managerSet(), Reserve: true}); err != nil {
		t.Fatal(err)
	}
	ms, _ := m.Get("s1")
	for i := 0; i < 7; i++ {
		if _, _, logErr := ms.Reevaluate(); logErr != nil {
			t.Fatal(logErr)
		}
	}
	if n := counters.Get(metrics.CounterJournalSnapshots); n < 2 {
		t.Fatalf("snapshots = %d, want >= 2", n)
	}
	want := fingerprints(t, m)
	lastSeq := m.LastSeq()
	m.Close()

	c2 := metrics.NewCounters()
	m2 := newPersistent(t, dir, ManagerConfig{Counters: c2})
	defer m2.Close()
	rec := m2.Recovery()
	if rec.SnapshotSeq == 0 {
		t.Error("recovery should have loaded a snapshot")
	}
	if rec.JournalRecords != 0 {
		t.Errorf("journal suffix after close-snapshot = %d records, want 0", rec.JournalRecords)
	}
	if rec.LastSeq != lastSeq {
		t.Errorf("lastSeq = %d, want %d", rec.LastSeq, lastSeq)
	}
	if got := fingerprints(t, m2); got["s1"] != want["s1"] {
		t.Errorf("compacted recovery diverged:\n got %s\nwant %s", got["s1"], want["s1"])
	}
}

func TestManagerCrashMidAppendRecoversCommitted(t *testing.T) {
	dir := t.TempDir()
	fp := journal.NewFailPoints()
	m := newPersistent(t, dir, ManagerConfig{FailPoints: fp})
	if _, err := m.Create(CreateSpec{Set: managerSet(), Reserve: true}); err != nil {
		t.Fatal(err)
	}
	ms, _ := m.Get("s1")
	committed := fingerprints(t, m)["s1"]

	// The next append tears mid-record: the fault applies in memory but
	// never commits, exactly a crash between apply and fsync.
	fp.Arm(journal.FPTornAppend, fp.Hits(journal.FPTornAppend)+1)
	err := ms.ApplyFault(fault.Fault{Kind: fault.HostCrash, Host: "p1"})
	if !errors.Is(err, journal.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// No Close: the process "died". Recovery must truncate the torn tail
	// and land on the last committed state.
	m2 := newPersistent(t, dir, ManagerConfig{})
	defer m2.Close()
	rec := m2.Recovery()
	if rec.TruncatedBytes == 0 {
		t.Error("recovery should have truncated the torn record")
	}
	if got := fingerprints(t, m2)["s1"]; got != committed {
		t.Errorf("recovered state includes uncommitted fault:\n got %s\nwant %s", got, committed)
	}
	if r, _ := m2.Get("s1"); r.Net().HostDown("p1") {
		t.Error("uncommitted host crash survived recovery")
	}
}

func TestManagerReconcileReleasesDeadHolds(t *testing.T) {
	dir := t.TempDir()
	m := newPersistent(t, dir, ManagerConfig{})
	if _, err := m.Create(CreateSpec{Set: managerSet(), Floor: 0.2, Reserve: true}); err != nil {
		t.Fatal(err)
	}
	ms, _ := m.Get("s1")
	if len(ms.State().Reserved) == 0 {
		t.Fatal("session should hold reservations")
	}
	onP1 := strings.Contains(strings.Join(ms.State().Path, " "), "conv1")

	// Crash the host the chain runs through, journaled, but crash before
	// any reevaluate runs — the recovered session still holds bandwidth
	// on links of a dead host.
	down := "p1"
	if !onP1 {
		down = "p2"
	}
	if err := ms.ApplyFault(fault.Fault{Kind: fault.HostCrash, Host: down}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	counters := metrics.NewCounters()
	m2 := newPersistent(t, dir, ManagerConfig{Counters: counters})
	defer m2.Close()
	r1, _ := m2.Get("s1")
	if got := r1.Net().HostDown(down); !got {
		t.Fatalf("host %s should be down after replay", down)
	}

	rep := m2.Reconcile()
	if rep.Recomposed != 1 || rep.ReleasedKbps <= 0 {
		t.Fatalf("reconcile = %+v, want 1 recomposed session with released kbps", rep)
	}
	if counters.Get(metrics.CounterRecoveryReconciled) != 1 {
		t.Error("recovery.reconciled counter not incremented")
	}
	// Zero-leak accounting: the overlay's total reserved bandwidth must
	// equal exactly what the session reports holding, and every hold must
	// sit on a usable link.
	var held float64
	for _, r := range r1.sess.Held() {
		if !r1.Net().Usable(r.From, r.To) {
			t.Errorf("hold %s->%s sits on an unusable link", r.From, r.To)
		}
		held += r.Kbps
	}
	if total := r1.Net().TotalReservedKbps(); total != held {
		t.Errorf("overlay holds %v kbps, session accounts for %v — leak", total, held)
	}
	// The reconcile sweep journals its recomposition: a second restart
	// replays straight to the reconciled state.
	want, _ := r1.Fingerprint()
	m2.Close()
	m3 := newPersistent(t, dir, ManagerConfig{})
	defer m3.Close()
	r2, _ := m3.Get("s1")
	if got, _ := r2.Fingerprint(); got != want {
		t.Errorf("post-reconcile recovery diverged:\n got %s\nwant %s", got, want)
	}
	if rep2 := m3.Reconcile(); rep2.Recomposed != 0 {
		t.Errorf("second reconcile recomposed %d sessions, want 0", rep2.Recomposed)
	}
}

func TestManagerInMemoryWithoutStateDir(t *testing.T) {
	m, err := NewManager(ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Persistent() {
		t.Error("manager without state dir should not be persistent")
	}
	if _, err := m.Create(CreateSpec{Set: managerSet()}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerBadSpec(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	_, err := m.Create(CreateSpec{Set: profile.Set{}})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}
