package session

import "qoschain/internal/core"

// Sample records the session state after one driven step.
type Sample struct {
	// Step is the 1-based virtual-time index.
	Step int
	// Path is the active chain.
	Path string
	// Satisfaction is the chain's current satisfaction.
	Satisfaction float64
	// Recomposed reports whether this step switched chains.
	Recomposed bool
	// Degraded reports whether the session ran this step below its
	// satisfaction floor (failover sessions only).
	Degraded bool
}

// Drive advances virtual time: each step it calls advance (the caller's
// fluctuation hook — an overlay.Trace step, a random walk, or anything
// else) and then re-evaluates the session, recording one Sample. It stops
// early with the error when the session loses every chain.
func (s *Session) Drive(advance func(), steps int) ([]Sample, error) {
	samples := make([]Sample, 0, steps)
	for i := 1; i <= steps; i++ {
		if advance != nil {
			advance()
		}
		s.Tick()
		s.NoteReevaluateReason(ReevalManual)
		changed, err := s.Reevaluate()
		if err != nil {
			return samples, err
		}
		samples = append(samples, Sample{
			Step:         i,
			Path:         core.PathString(s.current.Path),
			Satisfaction: s.current.Satisfaction,
			Recomposed:   changed,
			Degraded:     s.degraded,
		})
	}
	return samples, nil
}
