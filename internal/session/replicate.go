package session

// replicate.go is the session manager's replication surface. A primary
// exposes its journal suffix as chain-verified ship batches (ReadShip);
// a follower manager applies received records verbatim with
// ApplyReplicated — the exact bytes the primary journaled, appended at
// the exact sequence numbers, driven through the same replayCommand path
// recovery uses. Chain hashes therefore match the primary's by
// construction, and so does the rebuilt session state: replay is the
// deterministic state machine crash recovery already proved.

import (
	"encoding/json"
	"errors"
	"fmt"

	"qoschain/internal/journal"
	"qoschain/internal/metrics"
)

// ErrNotPersistent is returned for replication operations on an
// in-memory manager: with no journal there is nothing to ship or apply.
var ErrNotPersistent = errors.New("session: replication requires a state directory")

// LastChain returns the journal chain position (zero for an in-memory
// manager). Together with LastSeq it names the manager's applied offset
// in the shipping protocol.
func (m *Manager) LastChain() journal.Chain {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return journal.Chain{}
	}
	return m.log.LastChain()
}

// ReadShip assembles the journal suffix after offset `since` for
// shipping to a follower — at most max records (0 for the journal's
// default). When compaction has dropped that suffix, the batch instead
// carries the newest snapshot plus the records after it; the follower
// bootstraps from the snapshot and resumes incremental catch-up.
func (m *Manager) ReadShip(since uint64, max int) (*journal.ShipBatch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil, ErrNotPersistent
	}
	b, err := m.log.ReadSince(since, max)
	if err == nil {
		return b, nil
	}
	if !errors.Is(err, journal.ErrCompacted) {
		return nil, err
	}
	snap, _, serr := journal.LatestSnapshot(m.log.Dir())
	if serr != nil {
		return nil, serr
	}
	if snap == nil {
		return nil, err
	}
	b, err = m.log.ReadSince(snap.Seq, max)
	if err != nil {
		return nil, err
	}
	b.Snapshot = snap
	return b, nil
}

// ApplyReplicated appends verified shipped records verbatim and applies
// each through the recovery replay path. The records must continue the
// manager's journal exactly (the caller has already matched offsets and
// verified the chain — see journal.VerifyShip); any discontinuity is
// rejected before a single byte is appended. The whole batch commits
// under one group fsync. It returns the applied offset after the batch.
func (m *Manager) ApplyReplicated(recs []journal.Record) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return 0, ErrNotPersistent
	}
	cur := m.log.LastSeq()
	datas := make([][]byte, len(recs))
	for i, r := range recs {
		if r.Seq != cur+uint64(i)+1 {
			return cur, fmt.Errorf("session: replicated record seq %d does not continue applied offset %d", r.Seq, cur)
		}
		datas[i] = r.Data
	}
	if len(datas) == 0 {
		return cur, nil
	}
	if _, err := m.log.Append(datas...); err != nil {
		return cur, fmt.Errorf("%w: %w", ErrJournal, err)
	}
	for _, r := range recs {
		var ev walEvent
		if err := json.Unmarshal(r.Data, &ev); err != nil {
			m.replayError(fmt.Sprintf("replicated seq %d: %v", r.Seq, err))
			continue
		}
		m.replayCommand(ev, r.Seq)
		m.cfg.Counters.Inc(metrics.CounterReplicationApplied)
	}
	return m.log.LastSeq(), nil
}
