package session

import (
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/pipeline"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// testbed: sender can reach the receiver via converter A (proxy pa) or
// converter B (proxy pb); both emit a format the device decodes.
func testbed(t *testing.T) (Config, *overlay.Network) {
	t.Helper()
	net := overlay.New()
	net.AddLink("sender", "pa", 3000, 10, 0)
	net.AddLink("pa", "dev", 3000, 10, 0)
	net.AddLink("sender", "pb", 2000, 10, 0)
	net.AddLink("pb", "dev", 2000, 10, 0)

	convA := service.FormatConverter("conv-a", media.Opaque(1), media.Opaque(9))
	convA.Host = "pa"
	convB := service.FormatConverter("conv-b", media.Opaque(1), media.Opaque(9))
	convB.Host = "pb"

	cfg := Config{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: &profile.Device{ID: "dev", Software: profile.Software{
			Decoders: []media.Format{media.Opaque(9)},
		}},
		Services:     []*service.Service{convA, convB},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "dev",
		Select: core.Config{Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		})},
	}
	return cfg, net
}

func TestNewComposesInitialChain(t *testing.T) {
	cfg, _ := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Result()
	if !res.Found {
		t.Fatal("initial composition must succeed")
	}
	// conv-a path carries 30 fps, conv-b only 20 → conv-a wins.
	if core.PathString(res.Path) != "sender,conv-a,receiver" {
		t.Errorf("initial path = %s", core.PathString(res.Path))
	}
	if res.Satisfaction != 1 {
		t.Errorf("initial satisfaction = %v", res.Satisfaction)
	}
	if s.Recompositions() != 0 {
		t.Error("fresh session has no recompositions")
	}
}

func TestNewFailsWithoutChain(t *testing.T) {
	cfg, net := testbed(t)
	net.RemoveLink("sender", "pa")
	net.RemoveLink("sender", "pb")
	if _, err := New(cfg); err == nil {
		t.Error("unreachable receiver must fail composition")
	}
}

func TestReevaluateDegradedSwitchesChain(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the chain in use: conv-a's exit link drops to 600 kbps
	// (6 fps); conv-b's 20 fps chain becomes better.
	if err := net.SetBandwidth("pa", "dev", 600); err != nil {
		t.Fatal(err)
	}
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("session should switch to conv-b")
	}
	if core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Errorf("path after degradation = %s", core.PathString(s.Result().Path))
	}
	if s.Recompositions() != 1 {
		t.Errorf("recompositions = %d", s.Recompositions())
	}
	if s.History()[0].Reason != "degraded" {
		t.Errorf("reason = %s", s.History()[0].Reason)
	}
}

func TestReevaluateBrokenChain(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RemoveLink("pa", "dev")
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("broken chain must be replaced")
	}
	if s.History()[0].Reason != "broken" {
		t.Errorf("reason = %s", s.History()[0].Reason)
	}
	if core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Errorf("replacement path = %s", core.PathString(s.Result().Path))
	}
}

func TestReevaluateImprovedNetwork(t *testing.T) {
	cfg, net := testbed(t)
	// Start with conv-a degraded so conv-b is chosen initially.
	if err := net.SetBandwidth("pa", "dev", 600); err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Fatalf("setup: initial path = %s", core.PathString(s.Result().Path))
	}
	// conv-a recovers.
	if err := net.SetBandwidth("pa", "dev", 3000); err != nil {
		t.Fatal(err)
	}
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || s.History()[0].Reason != "improved" {
		t.Fatalf("recovery should switch back (changed=%v history=%v)", changed, s.History())
	}
	if s.Result().Satisfaction != 1 {
		t.Errorf("satisfaction after recovery = %v", s.Result().Satisfaction)
	}
}

func TestReevaluateStableNetworkNoChange(t *testing.T) {
	cfg, _ := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("stable network must not trigger re-composition")
	}
}

func TestReevaluateWithinToleranceKeepsChain(t *testing.T) {
	cfg, net := testbed(t)
	cfg.Tolerance = 0.2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mild degradation: 3000 → 2700 kbps is 27 fps, a 0.1 satisfaction
	// dip — inside the 0.2 tolerance.
	if err := net.SetBandwidth("pa", "dev", 2700); err != nil {
		t.Fatal(err)
	}
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("degradation within tolerance must not switch chains")
	}
	// The tracked satisfaction reflects the new reality.
	if got := s.Result().Satisfaction; got > 0.91 {
		t.Errorf("tracked satisfaction = %v, should have dropped to ~0.9", got)
	}
}

func TestReevaluateTotalPartitionKeepsLastChain(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RemoveLink("sender", "pa")
	net.RemoveLink("sender", "pb")
	_, err = s.Reevaluate()
	if err == nil {
		t.Error("total partition should surface an error")
	}
	if s.Result() == nil {
		t.Error("session must keep its last chain for diagnostics")
	}
}

func TestTouchesAndOnNetworkChange(t *testing.T) {
	cfg, _ := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Touches(overlay.Event{From: "sender", To: "pa"}) {
		t.Error("sender->pa is on the current chain")
	}
	if s.Touches(overlay.Event{From: "sender", To: "pb"}) {
		t.Error("sender->pb is not on the current chain")
	}
	changed, err := s.OnNetworkChange(overlay.Event{From: "sender", To: "pb", BandwidthKbps: 1})
	if err != nil || changed {
		t.Error("unrelated events must be ignored")
	}
	hosts := s.Hosts()
	if len(hosts) != 3 || hosts[0] != "sender" || hosts[1] != "pa" || hosts[2] != "dev" {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestEventDrivenRecomposition(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := net.Watch(8)
	defer cancel()
	if err := net.SetBandwidth("pa", "dev", 500); err != nil {
		t.Fatal(err)
	}
	ev := <-events
	changed, err := s.OnNetworkChange(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("event on the active chain should trigger re-composition")
	}
}

func TestDriveRecordsSamples(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := []func(){
		func() { _ = net.SetBandwidth("pa", "dev", 600) }, // degrade active
		func() {}, // stable
		func() { _ = net.SetBandwidth("pa", "dev", 3000) }, // recover
	}
	i := 0
	samples, err := s.Drive(func() {
		steps[i]()
		i++
	}, len(steps))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	if !samples[0].Recomposed || samples[0].Path != "sender,conv-b,receiver" {
		t.Errorf("step 1 = %+v", samples[0])
	}
	if samples[1].Recomposed {
		t.Errorf("step 2 should be stable: %+v", samples[1])
	}
	if !samples[2].Recomposed || samples[2].Satisfaction != 1 {
		t.Errorf("step 3 should recover: %+v", samples[2])
	}
}

func TestDriveStopsOnPartition(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := s.Drive(func() {
		net.RemoveLink("sender", "pa")
		net.RemoveLink("sender", "pb")
	}, 5)
	if err == nil {
		t.Fatal("partition should stop the drive with an error")
	}
	if len(samples) != 0 {
		t.Errorf("no sample should be recorded for the failing step, got %d", len(samples))
	}
}

func TestDriveNilAdvance(t *testing.T) {
	cfg, _ := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := s.Drive(nil, 2)
	if err != nil || len(samples) != 2 {
		t.Fatalf("nil advance should just re-evaluate: %v %d", err, len(samples))
	}
}

func TestSessionReservesBandwidth(t *testing.T) {
	cfg, net := testbed(t)
	cfg.ReserveBandwidth = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The conv-a chain delivers 30 fps = 3000 kbps; both hops are held.
	held := s.Reserved()
	if held["sender->pa"] != 3000 || held["pa->dev"] != 3000 {
		t.Errorf("Reserved = %v", held)
	}
	if got := net.AvailableBandwidth("sender", "pa"); got != 0 {
		t.Errorf("sender->pa available = %v, want 0", got)
	}
}

func TestTwoSessionsContend(t *testing.T) {
	cfg, net := testbed(t)
	cfg.ReserveBandwidth = true
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if first.Result().Satisfaction != 1 {
		t.Fatalf("first session sat = %v", first.Result().Satisfaction)
	}
	// The second session sees conv-a's path fully reserved and must
	// settle for conv-b's 20 fps.
	cfg2, _ := testbed(t)
	cfg2.Net = net
	cfg2.ReserveBandwidth = true
	second, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if core.PathString(second.Result().Path) != "sender,conv-b,receiver" {
		t.Errorf("second session path = %s", core.PathString(second.Result().Path))
	}
	if second.Result().Satisfaction >= 1 {
		t.Errorf("second session should be degraded, sat = %v", second.Result().Satisfaction)
	}
	// Closing the first session frees the good path; re-evaluating the
	// second session upgrades it.
	first.Close()
	changed, err := second.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || second.Result().Satisfaction != 1 {
		t.Errorf("after release the second session should upgrade: changed=%v sat=%v",
			changed, second.Result().Satisfaction)
	}
}

func TestReevaluateDoesNotSelfCongest(t *testing.T) {
	cfg, _ := testbed(t)
	cfg.ReserveBandwidth = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// With nothing else changing, the session must not see its own
	// reservation as congestion and flap.
	for i := 0; i < 3; i++ {
		changed, err := s.Reevaluate()
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("iteration %d: self-congestion flap", i)
		}
	}
	if s.Result().Satisfaction != 1 {
		t.Errorf("satisfaction drifted to %v", s.Result().Satisfaction)
	}
}

func TestSessionStream(t *testing.T) {
	cfg, _ := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Stream(150, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesOut != 150 {
		t.Errorf("full-rate chain should deliver all frames, got %d", stats.FramesOut)
	}
	if stats.ChainDelayMs != 20 { // 10 + 10 ms
		t.Errorf("chain delay = %v, want 20", stats.ChainDelayMs)
	}
}
