package session

// Tests for re-evaluation reason attribution: the reason token rides
// the journaled command, lands in the failover.reevaluate_* counters,
// and replays to exactly the live counter state.

import (
	"testing"

	"qoschain/internal/metrics"
)

func TestReevaluateReasonCounters(t *testing.T) {
	counters := metrics.NewCounters()
	m, err := NewManager(ManagerConfig{Counters: counters})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ms, err := m.Create(CreateSpec{Set: managerSet(), Seed: 7})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	if _, _, logErr := ms.Reevaluate(); logErr != nil {
		t.Fatalf("Reevaluate: %v", logErr)
	}
	if _, _, logErr := ms.ReevaluateReason(ReevalFault); logErr != nil {
		t.Fatalf("ReevaluateReason(fault): %v", logErr)
	}
	for i := 0; i < 2; i++ {
		if _, _, logErr := ms.ReevaluateReason(ReevalStorm); logErr != nil {
			t.Fatalf("ReevaluateReason(storm): %v", logErr)
		}
	}

	for name, want := range map[string]int64{
		metrics.CounterReevalManual: 1,
		metrics.CounterReevalFault:  1,
		metrics.CounterReevalStorm:  2,
	} {
		if got := counters.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestReevaluateReasonReplaysIdentically(t *testing.T) {
	dir := t.TempDir()
	live := metrics.NewCounters()
	m := newPersistent(t, dir, ManagerConfig{Counters: live})
	ms, err := m.Create(CreateSpec{Set: managerSet(), Seed: 7})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, _, logErr := ms.ReevaluateReason(ReevalStorm); logErr != nil {
		t.Fatalf("ReevaluateReason: %v", logErr)
	}
	if _, _, logErr := ms.ReevaluateReason(ReevalFault); logErr != nil {
		t.Fatalf("ReevaluateReason: %v", logErr)
	}
	wantState := fingerprints(t, m)
	m.Close()

	replayed := metrics.NewCounters()
	m2 := newPersistent(t, dir, ManagerConfig{Counters: replayed})
	defer m2.Close()
	gotState := fingerprints(t, m2)
	for id, want := range wantState {
		if gotState[id] != want {
			t.Fatalf("session %s replayed differently\nlive:     %s\nreplayed: %s", id, want, gotState[id])
		}
	}
	for _, name := range []string{metrics.CounterReevalStorm, metrics.CounterReevalFault, metrics.CounterReevalManual} {
		if live.Get(name) != replayed.Get(name) {
			t.Errorf("%s: live %d, replayed %d — reason attribution must replay identically",
				name, live.Get(name), replayed.Get(name))
		}
	}
}
