package session

// manager.go makes session state durable. A Manager owns the live
// sessions created over the API (each with its private overlay network
// and service pool) and — when given a state directory — journals every
// state-changing command through a checksummed, hash-chained write-ahead
// log (internal/journal): session create, fault injection, reevaluate
// and delete, which implicitly carry the reservation commit/release and
// failover/degrade transitions those commands cause.
//
// Sessions are deterministic state machines: the failover jitter is
// seeded, the clock is virtual (one tick per reevaluate), and faults
// mutate only the session's private overlay. Replaying the journaled
// command stream against the journaled creation profile therefore
// rebuilds byte-identical session state — including bandwidth holds,
// which are re-applied through the same overlay.ReserveChain admissions
// the live path used. Periodic snapshots compact the journal to the
// per-session command histories still needed (deleted sessions drop
// out), and recovery is snapshot + journal-suffix replay.
//
// After replay, Reconcile walks every recovered session and pushes the
// ones whose chain or bandwidth holds no longer match their overlay
// (a fault committed without a follow-up reevaluate before the crash)
// through the ordinary failover re-composition, releasing holds whose
// links died.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/graph"
	"qoschain/internal/journal"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/storm"
	"qoschain/internal/trace"
)

// ErrBadSpec marks a CreateSpec that fails validation before any
// composition runs — the HTTP layer maps it to 400.
var ErrBadSpec = errors.New("session: invalid spec")

// ErrUnknownSession is returned for operations against absent IDs.
var ErrUnknownSession = errors.New("session: unknown session")

// ErrJournal marks a durability failure: the command applied in memory
// but did not reach the write-ahead journal. The server should treat it
// as fatal — a restart recovers to the last fsynced record.
var ErrJournal = errors.New("session: journal write failed")

// CreateSpec is everything needed to (re)build one managed session — the
// journaled creation command.
type CreateSpec struct {
	// Set is the full profile set the session composes over.
	Set profile.Set `json:"set"`
	// Floor is the failover satisfaction floor.
	Floor float64 `json:"floor,omitempty"`
	// Seed seeds the failover jitter (0 behaves as 1).
	Seed int64 `json:"seed,omitempty"`
	// Contact selects per-contact user preferences.
	Contact string `json:"contact,omitempty"`
	// Reserve holds the chain's bitrate on the session's overlay links.
	Reserve bool `json:"reserve,omitempty"`
}

// ManagerConfig assembles a Manager.
type ManagerConfig struct {
	// StateDir enables durability: commands are journaled there and
	// replayed on the next open. Empty keeps the manager in-memory only.
	StateDir string
	// IDPrefix namespaces session IDs (e.g. "n1-" yields "n1-s1"), so a
	// cluster router can map any session ID back to the node that minted
	// it. Empty for a standalone daemon. A replica manager mirroring a
	// remote primary sets the primary's prefix, so replicated creates
	// replay under their original IDs.
	IDPrefix string
	// SnapshotEvery compacts the journal after this many commands.
	// Default 64; negative disables periodic snapshots.
	SnapshotEvery int
	// Counters receives journal.* and recovery.* metrics, and mirrors
	// every per-session failover counter (the authoritative copies live
	// with each session and replay with it — see metrics.Fanout). Nil is
	// a valid no-op sink.
	Counters *metrics.Counters
	// FailPoints injects deterministic crash sites into the journal —
	// the adaptsim -crash harness and tests arm these.
	FailPoints *journal.FailPoints
	// Storm switches the manager to storm-attached mode: instead of a
	// private overlay and failover loop per session, each create derives
	// a shared region from its network profile and attaches the session
	// to a storm equivalence class (fingerprint-keyed ClassSpec).
	// Faults route their changed-link sets through the storm controller
	// — one Select per affected class, atomic SwapChain per member — and
	// the controller's storm records journal through this manager's WAL,
	// so cluster WAL shipping replicates class state for free.
	Storm bool
	// StormVerify arms the controller's naive per-session equivalence
	// check (harness use only).
	StormVerify bool
	// StormHaltAfterFanouts arms the controller's deterministic
	// mid-storm crash site (see storm.Config.HaltAfterFanouts).
	StormHaltAfterFanouts int
}

// walEvent is the journaled wire form of one command.
type walEvent struct {
	Op     string       `json:"op"` // create | fault | reevaluate | delete
	ID     string       `json:"id"`
	Create *CreateSpec  `json:"create,omitempty"`
	Fault  *fault.Fault `json:"fault,omitempty"`
	// Reason attributes a reevaluate command to its driver — "manual"
	// (client request), "fault" (post-recovery reconciliation) or
	// "storm" (mass re-composition) — so traces can tell storm-driven
	// re-plans from per-session failover. Empty on journals written
	// before the field existed; replay treats empty as unattributed.
	Reason string `json:"reason,omitempty"`
	// Kind/Data carry a storm controller record when Op is "storm":
	// Kind is the controller's record kind (storm-begin, storm-class,
	// storm-end) and Data its payload, replayed back through
	// storm.Controller.ReplayRecord.
	Kind string          `json:"kind,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// sessionHistory is one session's replayable command stream: its
// creation spec plus every fault and reevaluate since. Snapshots carry
// exactly these, so compaction drops deleted sessions' commands.
type sessionHistory struct {
	Create CreateSpec `json:"create"`
	Events []walEvent `json:"events,omitempty"`
}

// snapshotDoc is the snapshot payload. Non-storm managers carry
// per-session histories (deleted sessions compact away); storm-attached
// managers carry the full ordered command log instead, because sessions
// in one region share overlay state and cross-session command order is
// what makes replay deterministic.
type snapshotDoc struct {
	Seq      int                        `json:"seq"`
	Sessions map[string]*sessionHistory `json:"sessions"`
	Ordered  []walEvent                 `json:"ordered,omitempty"`
}

// RecoveryReport summarizes what a Manager rebuilt at startup; adaptd
// exposes it on /healthz.
type RecoveryReport struct {
	// SnapshotSeq/SnapshotSessions describe the loaded snapshot.
	SnapshotSeq      uint64 `json:"snapshotSeq"`
	SnapshotSessions int    `json:"snapshotSessions"`
	// JournalRecords is how many journal-suffix commands replayed.
	JournalRecords int `json:"journalRecords"`
	// TruncatedBytes counts torn-tail bytes recovery dropped.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Sessions is the live session count after replay.
	Sessions int `json:"sessions"`
	// LastSeq is the journal position the manager resumed from.
	LastSeq uint64 `json:"lastSeq"`
	// Skipped names corrupt or stale files recovery ignored.
	Skipped []string `json:"skipped,omitempty"`
	// ReplayErrors lists commands that failed to re-apply.
	ReplayErrors []string `json:"replayErrors,omitempty"`
	// Reconcile is filled in once Reconcile has run.
	Reconcile *ReconcileReport `json:"reconcile,omitempty"`
}

// ReconcileReport summarizes the post-recovery reservation sweep.
type ReconcileReport struct {
	// Checked counts sessions inspected.
	Checked int `json:"checked"`
	// Recomposed counts sessions pushed through failover re-composition
	// because their chain or holds no longer matched the overlay.
	Recomposed int `json:"recomposed"`
	// ReleasedKbps is the bandwidth freed from holds on dead links.
	ReleasedKbps float64 `json:"releasedKbps"`
	// Sessions names the recomposed sessions, sorted.
	Sessions []string `json:"sessions,omitempty"`
}

// Manager owns live sessions and their durability.
type Manager struct {
	mu          sync.Mutex
	cfg         ManagerConfig
	log         *journal.Log
	sessions    map[string]*Managed
	histories   map[string]*sessionHistory
	seq         int // session ID counter
	eventsSince int // commands since the last snapshot
	recovery    *RecoveryReport

	// Storm-attached mode state. storm is the embedded controller (its
	// records journal through this manager's WAL via the sink); ordered
	// is the full command log in journal order, the storm-mode snapshot
	// payload. attachMu serializes create/delete so attach order on the
	// shared region overlays matches journal order; it is never taken by
	// the controller's sink path, so it cannot deadlock against a storm
	// fan-out (which holds the controller lock and then takes m.mu).
	storm    *storm.Controller
	ordered  []walEvent
	attachMu sync.Mutex

	// QoS SLO tracking for the non-attached mode (see qos.go). qosMu is
	// a leaf lock: taken after ms.mu/m.mu, never around them.
	qosMu       sync.Mutex
	qosBurn     *metrics.BurnWindow
	qosDegraded int
}

// Managed is one manager-owned session. In the default mode it owns a
// private overlay and service pool (faults against one session never
// leak into another) and sess drives per-session failover. In
// storm-attached mode sess is nil: the session is a member of a storm
// equivalence class, net aliases the shared region overlay, and all
// re-composition happens through the manager's storm controller.
type Managed struct {
	mu       sync.Mutex
	m        *Manager
	id       string
	sess     *Session
	net      *overlay.Network
	pool     *fault.ServiceSet
	counters *metrics.Counters

	attached bool
	classKey string
	region   string
	step     int // virtual clock: one tick per reevaluate

	// qosBelow tracks the session's last observed below-floor state for
	// breach-transition counting (guarded by m.qosMu). Unexported and
	// never marshaled: SLO telemetry stays out of Fingerprint.
	qosBelow bool
}

// NewManager builds a manager and — with a state directory — recovers
// every committed session from the snapshot and journal.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 64
	}
	m := &Manager{
		cfg:       cfg,
		sessions:  make(map[string]*Managed),
		histories: make(map[string]*sessionHistory),
		recovery:  &RecoveryReport{},
		qosBurn:   metrics.NewBurnWindow(0),
	}
	if cfg.Storm {
		// The embedded controller journals its storm records through
		// this manager's WAL (the sink) and is rebuilt from it on
		// recovery — it never owns a log of its own.
		ctrl, err := storm.Open(storm.Config{
			Workers:          1,
			Verify:           cfg.StormVerify,
			HaltAfterFanouts: cfg.StormHaltAfterFanouts,
			Counters:         cfg.Counters,
			Sink:             m.stormSink,
		}, nil)
		if err != nil {
			return nil, err
		}
		m.storm = ctrl
	}
	if cfg.StateDir == "" {
		return m, nil
	}
	log, rec, err := journal.OpenLog(cfg.StateDir, journal.Options{
		FailPoints: cfg.FailPoints,
		Counters:   cfg.Counters,
	})
	if err != nil {
		return nil, err
	}
	m.log = log
	m.recovery = &RecoveryReport{
		SnapshotSeq:    rec.SnapshotSeq,
		JournalRecords: len(rec.Records),
		TruncatedBytes: rec.TruncatedBytes,
		LastSeq:        rec.LastSeq,
		Skipped:        rec.Skipped,
	}
	if rec.SnapshotData != nil {
		var doc snapshotDoc
		if err := json.Unmarshal(rec.SnapshotData, &doc); err != nil {
			log.Close()
			return nil, fmt.Errorf("session: decoding snapshot: %w", err)
		}
		m.seq = doc.Seq
		if m.cfg.Storm {
			// Storm-mode snapshots are the ordered command log; replay
			// it like a journal prefix (cross-session order matters on
			// the shared region overlays).
			for _, ev := range doc.Ordered {
				m.replayCommand(ev, 0)
			}
			m.recovery.SnapshotSessions = len(m.sessions)
		}
		m.recovery.SnapshotSessions += len(doc.Sessions)
		ids := make([]string, 0, len(doc.Sessions))
		for id := range doc.Sessions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			hist := doc.Sessions[id]
			ms, err := m.buildManaged(id, hist.Create)
			if err != nil {
				m.replayError(fmt.Sprintf("snapshot session %s: %v", id, err))
				continue
			}
			m.sessions[id] = ms
			m.histories[id] = hist
			for _, ev := range hist.Events {
				if err := ms.replay(ev); err != nil {
					m.replayError(fmt.Sprintf("snapshot session %s op %s: %v", id, ev.Op, err))
				}
			}
		}
	}
	for _, r := range rec.Records {
		var ev walEvent
		if err := json.Unmarshal(r.Data, &ev); err != nil {
			m.replayError(fmt.Sprintf("journal seq %d: %v", r.Seq, err))
			continue
		}
		m.replayCommand(ev, r.Seq)
	}
	m.recovery.Sessions = len(m.sessions)
	cfg.Counters.Add(metrics.CounterRecoverySessions, int64(len(m.sessions)))
	return m, nil
}

// replayError records one failed replay without aborting recovery: the
// affected session stays at its last good state.
func (m *Manager) replayError(msg string) {
	m.recovery.ReplayErrors = append(m.recovery.ReplayErrors, msg)
	m.cfg.Counters.Inc(metrics.CounterRecoveryErrors)
}

// replayCommand re-applies one journaled command during recovery.
func (m *Manager) replayCommand(ev walEvent, seq uint64) {
	if m.cfg.Storm {
		// The ordered log must mirror the journal exactly so the next
		// snapshot replays to the same state.
		m.ordered = append(m.ordered, ev)
	}
	switch ev.Op {
	case "create":
		if ev.Create == nil {
			m.replayError(fmt.Sprintf("journal seq %d: create without spec", seq))
			return
		}
		var (
			ms  *Managed
			err error
		)
		if m.cfg.Storm {
			ms, err = m.buildAttached(ev.ID, *ev.Create)
		} else {
			ms, err = m.buildManaged(ev.ID, *ev.Create)
		}
		if err != nil {
			m.replayError(fmt.Sprintf("journal seq %d: create %s: %v", seq, ev.ID, err))
			return
		}
		m.sessions[ev.ID] = ms
		if !m.cfg.Storm {
			m.histories[ev.ID] = &sessionHistory{Create: *ev.Create}
		}
		m.bumpSeq(ev.ID)
	case "fault", "reevaluate":
		ms := m.sessions[ev.ID]
		if ms == nil {
			m.replayError(fmt.Sprintf("journal seq %d: %s against unknown session %s", seq, ev.Op, ev.ID))
			return
		}
		if err := ms.replay(ev); err != nil {
			m.replayError(fmt.Sprintf("journal seq %d: %s %s: %v", seq, ev.Op, ev.ID, err))
			return
		}
		if h := m.histories[ev.ID]; h != nil {
			h.Events = append(h.Events, ev)
		}
	case "delete":
		if ms := m.sessions[ev.ID]; ms != nil {
			if ms.attached {
				if err := m.storm.DetachSession(ev.ID); err != nil {
					m.replayError(fmt.Sprintf("journal seq %d: detach %s: %v", seq, ev.ID, err))
				}
			} else {
				ms.sess.Close()
				ms.qosDrop()
			}
		}
		delete(m.sessions, ev.ID)
		delete(m.histories, ev.ID)
	case "storm":
		// A storm controller record that journaled through the sink;
		// hand it back for replay (fan-outs re-apply their recorded
		// plans — no Select).
		if m.storm == nil {
			m.replayError(fmt.Sprintf("journal seq %d: storm record without storm mode", seq))
			return
		}
		if err := m.storm.ReplayRecord(ev.Kind, ev.Data); err != nil {
			m.replayError(fmt.Sprintf("journal seq %d: storm %s: %v", seq, ev.Kind, err))
		}
	default:
		m.replayError(fmt.Sprintf("journal seq %d: unknown op %q", seq, ev.Op))
	}
}

// replay re-applies one command against a session being rebuilt. The
// session's own error returns (a failed reevaluate under partition, say)
// are part of its deterministic behavior, not replay failures.
func (ms *Managed) replay(ev walEvent) error {
	if ms.attached {
		return ms.replayAttached(ev)
	}
	switch ev.Op {
	case "fault":
		if ev.Fault == nil {
			return fmt.Errorf("fault command without fault")
		}
		return ms.applyFault(*ev.Fault)
	case "reevaluate":
		ms.sess.Tick()
		// The reason counter is part of the session's deterministic
		// counter state, so replay must increment it exactly as the live
		// command did (old journals carry no reason: no increment, same
		// as the live no-reason path never taken today).
		ms.sess.NoteReevaluateReason(ev.Reason)
		ms.sess.Reevaluate() //nolint:errcheck // deterministic session-level outcome, replayed as-is
		ms.qosNoteLocked()
		return nil
	default:
		return fmt.Errorf("unknown session op %q", ev.Op)
	}
}

// bumpSeq keeps the ID counter ahead of every replayed session ID.
func (m *Manager) bumpSeq(id string) {
	id = strings.TrimPrefix(id, m.cfg.IDPrefix)
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "s")); err == nil && n > m.seq {
		m.seq = n
	}
}

// buildManaged constructs a session from its spec — the single path both
// live creation and replay go through, so they cannot diverge.
func (m *Manager) buildManaged(id string, spec CreateSpec) (*Managed, error) {
	return m.buildManagedCtx(context.Background(), id, spec)
}

// buildManagedCtx is buildManaged under a context carrying the creating
// request's trace (replay passes a background context — tracing never
// influences session state, so replayed sessions stay byte-identical).
func (m *Manager) buildManagedCtx(ctx context.Context, id string, spec CreateSpec) (*Managed, error) {
	set := spec.Set
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	satProfile, err := set.User.SatisfactionProfile(profile.ContactClass(spec.Contact))
	if err == nil {
		err = satProfile.Validate()
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	net, err := overlay.FromProfile(set.Network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	svcs := graph.CollectServices(set.Intermediaries)
	pool := fault.NewServiceSet(svcs)
	counters := metrics.NewCounters()
	sess, err := NewCtx(ctx, Config{
		Content:          &set.Content,
		Device:           &set.Device,
		Services:         svcs,
		Net:              net,
		SenderHost:       "sender",
		ReceiverHost:     set.Device.ID,
		ReserveBandwidth: spec.Reserve,
		Select: core.Config{
			Profile:      satProfile,
			Budget:       set.User.Budget,
			ReceiverCaps: set.Device.RenderCaps(),
		},
		Pool: pool,
		Failover: FailoverConfig{
			Enabled:           true,
			SatisfactionFloor: spec.Floor,
			JitterSeed:        spec.Seed,
			// Managed sessions run on a virtual clock; retries never
			// wall-clock sleep.
			Sleep: func(time.Duration) {},
			// The session's private counters stay authoritative (they are
			// part of the deterministic State/Fingerprint); the manager's
			// sink mirrors every write so daemon-wide registries see
			// failover.* activity too.
			Metrics: metrics.Fanout(counters, m.cfg.Counters),
		},
	})
	if err != nil {
		return nil, err
	}
	ms := &Managed{m: m, id: id, sess: sess, net: net, pool: pool, counters: counters}
	// The creation compose is the session's first SLO observation —
	// recorded here so live creates and replayed creates agree.
	ms.qosNoteLocked()
	return ms, nil
}

// journalCommand appends one command to the WAL and fsyncs (callers
// batching multiple commands rely on Log.Append's group commit), then
// compacts when due. Callers hold m.mu. A nil log is a no-op.
func (m *Manager) journalCommand(ev walEvent) error {
	if m.log == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("session: encoding command: %w", err)
	}
	if m.cfg.Storm {
		m.ordered = append(m.ordered, ev)
	}
	if _, err := m.log.Append(data); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	m.eventsSince++
	if m.cfg.SnapshotEvery > 0 && m.eventsSince >= m.cfg.SnapshotEvery {
		return m.snapshotLocked()
	}
	return nil
}

// snapshotLocked publishes a compacting snapshot. Callers hold m.mu.
func (m *Manager) snapshotLocked() error {
	if m.log == nil {
		return nil
	}
	doc := snapshotDoc{Seq: m.seq, Sessions: m.histories}
	if m.cfg.Storm {
		doc.Sessions = nil
		doc.Ordered = m.ordered
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("session: encoding snapshot: %w", err)
	}
	if err := m.log.Snapshot(data); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	m.eventsSince = 0
	return nil
}

// Recovery returns the startup recovery report (empty for an in-memory
// manager).
func (m *Manager) Recovery() *RecoveryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// LastSeq returns the journal position (0 for an in-memory manager).
func (m *Manager) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return 0
	}
	return m.log.LastSeq()
}

// Persistent reports whether the manager journals its commands.
func (m *Manager) Persistent() bool { return m.log != nil }

// Create validates the spec, composes the session, and journals the
// creation. The session is live (state applied) even when journaling
// fails — the caller sees the error and the process is expected to die,
// exactly like a crash between apply and log.
func (m *Manager) Create(spec CreateSpec) (*Managed, error) {
	return m.CreateCtx(context.Background(), spec)
}

// CreateCtx is Create under a context: a trace carried by the context
// records the composition and journal-append spans of the creation.
func (m *Manager) CreateCtx(ctx context.Context, spec CreateSpec) (*Managed, error) {
	if m.cfg.Storm {
		return m.createAttachedCtx(ctx, spec)
	}
	ms, err := m.buildManagedCtx(ctx, "", spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	ms.id = fmt.Sprintf("%ss%d", m.cfg.IDPrefix, m.seq)
	m.sessions[ms.id] = ms
	m.histories[ms.id] = &sessionHistory{Create: spec}
	if err := m.journalTraced(ctx, walEvent{Op: "create", ID: ms.id, Create: &spec}); err != nil {
		return ms, err
	}
	return ms, nil
}

// journalTraced wraps journalCommand in a "journal.append" span when the
// context carries a trace. Callers hold m.mu.
func (m *Manager) journalTraced(ctx context.Context, ev walEvent) error {
	sp := trace.FromContext(ctx).StartSpan("journal.append", trace.Str("op", ev.Op))
	err := m.journalCommand(ev)
	if err != nil {
		sp.End(trace.Str("outcome", "error"))
		return err
	}
	sp.End()
	return nil
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Managed, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.sessions[id]
	return ms, ok
}

// List returns every session, sorted by ID.
func (m *Manager) List() []*Managed {
	m.mu.Lock()
	all := make([]*Managed, 0, len(m.sessions))
	for _, ms := range m.sessions {
		all = append(all, ms)
	}
	m.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	return all
}

// Delete tears a session down, releasing its bandwidth holds, and
// journals the deletion. It reports whether the session existed.
func (m *Manager) Delete(id string) (bool, error) {
	if m.cfg.Storm {
		return m.deleteAttached(id)
	}
	m.mu.Lock()
	ms, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return false, nil
	}
	delete(m.sessions, id)
	delete(m.histories, id)
	err := m.journalCommand(walEvent{Op: "delete", ID: id})
	m.mu.Unlock()
	ms.mu.Lock()
	ms.sess.Close()
	ms.qosDrop()
	ms.mu.Unlock()
	return true, err
}

// Close snapshots (compacting the journal to the live sessions) and
// closes the log. Sessions stay usable in memory.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	err := m.snapshotLocked()
	if cerr := m.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// ID returns the session's identifier.
func (ms *Managed) ID() string { return ms.id }

// Counters returns the session's private failover counters.
func (ms *Managed) Counters() *metrics.Counters { return ms.counters }

// Net returns the session's private overlay.
func (ms *Managed) Net() *overlay.Network { return ms.net }

// Pool returns the session's private service pool.
func (ms *Managed) Pool() *fault.ServiceSet { return ms.pool }

// Held returns the session's live bandwidth reservations.
func (ms *Managed) Held() []overlay.Reservation {
	if ms.attached {
		v, _ := ms.m.storm.MemberState(ms.id)
		return v.Held
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.sess.Held()
}

// ApplyFault injects one fault against the session's private overlay and
// pool, journaling it on success.
func (ms *Managed) ApplyFault(f fault.Fault) error {
	return ms.ApplyFaultCtx(context.Background(), f)
}

// ApplyFaultCtx is ApplyFault under a context carrying the request trace.
func (ms *Managed) ApplyFaultCtx(ctx context.Context, f fault.Fault) error {
	if ms.attached {
		return ms.applyFaultAttachedCtx(ctx, f)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if err := ms.applyFault(f); err != nil {
		return err
	}
	ms.m.mu.Lock()
	defer ms.m.mu.Unlock()
	ev := walEvent{Op: "fault", ID: ms.id, Fault: &f}
	if h := ms.m.histories[ms.id]; h != nil {
		h.Events = append(h.Events, ev)
	}
	return ms.m.journalTraced(ctx, ev)
}

// applyFault mutates the overlay/pool. Callers hold ms.mu.
func (ms *Managed) applyFault(f fault.Fault) error {
	switch f.Kind {
	case fault.HostCrash:
		if err := ms.net.FailHost(f.Host); err != nil {
			return err
		}
		ms.pool.SetHostDown(f.Host, true)
	case fault.HostRecover:
		if err := ms.net.RecoverHost(f.Host); err != nil {
			return err
		}
		ms.pool.SetHostDown(f.Host, false)
	case fault.LinkDown:
		return ms.net.FailLink(f.From, f.To)
	case fault.LinkUp:
		return ms.net.RecoverLink(f.From, f.To)
	case fault.BandwidthCollapse:
		for _, l := range ms.net.Snapshot().Links {
			if l.From == f.From && l.To == f.To {
				return ms.net.SetBandwidth(f.From, f.To, l.BandwidthKbps*f.Factor)
			}
		}
		return fmt.Errorf("session: no link %s->%s", f.From, f.To)
	case fault.LossSpike:
		return ms.net.SetLoss(f.From, f.To, f.LossRate)
	case fault.DelaySpike:
		return ms.net.SetDelay(f.From, f.To, f.DelayMs)
	case fault.ServiceDown:
		ms.pool.SetServiceDown(f.Service, true)
	case fault.ServiceUp:
		ms.pool.SetServiceDown(f.Service, false)
	default:
		return fmt.Errorf("session: unsupported fault kind %q", f.Kind)
	}
	return nil
}

// Reevaluate advances the session one step and re-evaluates its chain,
// journaling the command. evalErr is the session-level outcome (part of
// the deterministic state machine, surfaced to the client); logErr is a
// durability failure.
func (ms *Managed) Reevaluate() (changed bool, evalErr, logErr error) {
	return ms.ReevaluateCtx(context.Background())
}

// ReevaluateCtx is Reevaluate under a context: a trace carried by the
// context records the re-composition's selection, failover and journal
// spans. The command is attributed to the "manual" reason; fault
// handling and the storm controller use ReevaluateReasonCtx.
func (ms *Managed) ReevaluateCtx(ctx context.Context) (changed bool, evalErr, logErr error) {
	return ms.ReevaluateReasonCtx(ctx, ReevalManual)
}

// ReevaluateReason is Reevaluate with an explicit cause attribution —
// one of ReevalManual, ReevalFault or ReevalStorm — journaled with the
// command and surfaced in the failover.reevaluate_* counters.
func (ms *Managed) ReevaluateReason(reason string) (changed bool, evalErr, logErr error) {
	return ms.ReevaluateReasonCtx(context.Background(), reason)
}

// ReevaluateReasonCtx is ReevaluateReason under a context.
func (ms *Managed) ReevaluateReasonCtx(ctx context.Context, reason string) (changed bool, evalErr, logErr error) {
	if ms.attached {
		return ms.reevaluateAttachedCtx(ctx, reason)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.sess.Tick()
	ms.sess.NoteReevaluateReason(reason)
	changed, evalErr = ms.sess.ReevaluateCtx(ctx)
	ms.qosNoteLocked()
	ms.m.mu.Lock()
	defer ms.m.mu.Unlock()
	ev := walEvent{Op: "reevaluate", ID: ms.id, Reason: reason}
	if h := ms.m.histories[ms.id]; h != nil {
		h.Events = append(h.Events, ev)
	}
	logErr = ms.m.journalTraced(ctx, ev)
	return changed, evalErr, logErr
}

// State is the externally visible, deterministic state of one managed
// session — what /v1/sessions serves and what the crash harness compares
// byte-for-byte across a crash and recovery.
type State struct {
	ID             string             `json:"id"`
	Path           []string           `json:"path"`
	Formats        []string           `json:"formats"`
	Satisfaction   float64            `json:"satisfaction"`
	Cost           float64            `json:"cost"`
	Step           int                `json:"step"`
	Recompositions int                `json:"recompositions"`
	Failover       FailoverStatus     `json:"failover"`
	DownHosts      []string           `json:"downHosts,omitempty"`
	DownServices   []string           `json:"downServices,omitempty"`
	History        []Change           `json:"history,omitempty"`
	Reserved       map[string]float64 `json:"reserved,omitempty"`
	Counters       map[string]int64   `json:"counters,omitempty"`
}

// State snapshots the session.
func (ms *Managed) State() State {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.stateLocked()
}

func (ms *Managed) stateLocked() State {
	if ms.attached {
		return ms.attachedStateLocked()
	}
	res := ms.sess.Result()
	st := State{
		ID:             ms.id,
		Satisfaction:   res.Satisfaction,
		Cost:           res.Cost,
		Step:           ms.sess.CurrentStep(),
		Recompositions: ms.sess.Recompositions(),
		Failover:       ms.sess.FailoverStatus(),
		DownHosts:      ms.net.DownHosts(),
		History:        ms.sess.History(),
		Reserved:       ms.sess.Reserved(),
		Counters:       ms.counters.Snapshot(),
	}
	sort.Strings(st.DownHosts)
	for _, id := range res.Path {
		st.Path = append(st.Path, string(id))
	}
	for _, f := range res.Formats {
		st.Formats = append(st.Formats, f.String())
	}
	for _, id := range ms.pool.Down() {
		st.DownServices = append(st.DownServices, string(id))
	}
	sort.Strings(st.DownServices)
	return st
}

// Fingerprint renders the session state as canonical JSON — the
// byte-identity token the crash harness compares across restarts.
func (ms *Managed) Fingerprint() (string, error) {
	data, err := json.Marshal(ms.State())
	return string(data), err
}

// Reconcile sweeps every session after recovery: a session whose chain
// crosses a dead host or whose bandwidth holds sit on dead links is
// pushed through the ordinary failover re-composition, which releases
// the stale holds and re-reserves under the new chain (or degrades
// gracefully). The sweep's commands journal like any other, so a second
// crash replays the reconciled state. The report is also recorded on the
// recovery report.
func (m *Manager) Reconcile() *ReconcileReport {
	if m.cfg.Storm {
		return m.reconcileStorm()
	}
	rep := &ReconcileReport{}
	for _, ms := range m.List() {
		rep.Checked++
		ms.mu.Lock()
		stale := 0.0
		for _, r := range ms.sess.Held() {
			if !ms.net.Usable(r.From, r.To) {
				stale += r.Kbps
			}
		}
		broken := stale > 0
		if !broken {
			for _, h := range ms.sess.Hosts() {
				if ms.net.HostDown(h) {
					broken = true
					break
				}
			}
		}
		ms.mu.Unlock()
		if !broken {
			continue
		}
		ms.ReevaluateReason(ReevalFault) //nolint:errcheck // degraded outcomes land in the session state
		rep.Recomposed++
		rep.ReleasedKbps += stale
		rep.Sessions = append(rep.Sessions, ms.id)
		m.cfg.Counters.Inc(metrics.CounterRecoveryReconciled)
		if stale > 0 {
			m.cfg.Counters.Observe(metrics.SampleRecoveryReleasedKbps, stale)
		}
	}
	sort.Strings(rep.Sessions)
	m.mu.Lock()
	m.recovery.Reconcile = rep
	m.mu.Unlock()
	return rep
}
