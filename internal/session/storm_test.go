package session

// storm_test.go exercises the manager's storm-attached mode: sessions
// created through the ordinary CreateSpec path fold into storm
// equivalence classes, faults fan out through the controller instead of
// per-session failover, and the whole construction — class membership,
// region overlays, open storms — replays byte-identically from the
// manager's single WAL.

import (
	"errors"
	"math"
	"sync"
	"testing"

	"qoschain/internal/fault"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/storm"
)

// stormSet is managerSet with every link scaled to hold a whole class
// population: storm members all reserve on the one shared region
// overlay, so the two-proxy capacities that fit a single private
// session would starve the twins.
func stormSet() profile.Set {
	set := managerSet()
	for i := range set.Network.Links {
		set.Network.Links[i].BandwidthKbps *= 100
	}
	return set
}

// newStormManager builds an in-memory storm-attached manager with its
// own metrics sink.
func newStormManager(t *testing.T) (*Manager, *metrics.Counters) {
	t.Helper()
	c := metrics.NewCounters()
	m, err := NewManager(ManagerConfig{Storm: true, Counters: c})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m, c
}

// chainProxy resolves which proxy host a session's chain routes
// through, so tests can kill the link the chain actually uses.
func chainProxy(t *testing.T, ms *Managed) (host, conv string) {
	t.Helper()
	for _, hop := range ms.State().Path {
		switch hop {
		case "conv1":
			return "p1", "conv1"
		case "conv2":
			return "p2", "conv2"
		}
	}
	t.Fatalf("session %s routes through no converter: %v", ms.ID(), ms.State().Path)
	return "", ""
}

// stormLeak audits the shared region ledger: the sum of member holds
// must equal the overlay's reserved total, to float noise.
func stormLeak(m *Manager) float64 {
	ctrl := m.StormController()
	leak := 0.0
	for _, name := range ctrl.Regions() {
		held := ctrl.HeldKbps(name)
		reserved := ctrl.RegionNet(name).TotalReservedKbps()
		if d := reserved - held; math.Abs(d) > 1e-6*math.Max(1, math.Max(held, reserved)) {
			leak += d
		}
	}
	return leak
}

func TestStormAttachSharesClass(t *testing.T) {
	m, counters := newStormManager(t)

	// Four sessions at floor 0.3 share one fingerprint; two at floor
	// 0.5 form a second class. Only the first of each pays a Select.
	for i := 0; i < 4; i++ {
		if _, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.3}); err != nil {
			t.Fatalf("create: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.5}); err != nil {
			t.Fatalf("create floor 0.5: %v", err)
		}
	}
	ctrl := m.StormController()
	if ctrl.Classes() != 2 {
		t.Fatalf("classes = %d, want 2", ctrl.Classes())
	}
	if ctrl.Sessions() != 6 {
		t.Fatalf("controller sessions = %d, want 6", ctrl.Sessions())
	}
	if len(ctrl.Regions()) != 1 {
		t.Fatalf("regions = %v, want exactly one shared region", ctrl.Regions())
	}
	if g := counters.Gauge(metrics.GaugeStormClassesAttached); g != 2 {
		t.Errorf("storm.classes_attached gauge = %v, want 2", g)
	}

	// Every member serves a full State off its class plan and holds
	// bandwidth on the shared overlay.
	for _, ms := range m.List() {
		st := ms.State()
		if len(st.Path) == 0 || len(st.Formats) == 0 {
			t.Errorf("session %s has empty plan: %+v", ms.ID(), st)
		}
		if len(st.Reserved) == 0 {
			t.Errorf("session %s holds no bandwidth", ms.ID())
		}
		if !st.Failover.Enabled {
			t.Errorf("session %s does not report storm failover", ms.ID())
		}
	}
	if leak := stormLeak(m); leak != 0 {
		t.Fatalf("reservation leak of %v kbps", leak)
	}

	// Deleting a member releases exactly its hold; the class survives
	// for its twins.
	ms := m.List()[0]
	if ok, err := m.Delete(ms.ID()); !ok || err != nil {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if ctrl.Sessions() != 5 {
		t.Fatalf("controller sessions after delete = %d, want 5", ctrl.Sessions())
	}
	if leak := stormLeak(m); leak != 0 {
		t.Fatalf("leak after delete: %v kbps", leak)
	}
}

func TestStormFaultFansOutPerClass(t *testing.T) {
	m, counters := newStormManager(t)

	var all []*Managed
	for i := 0; i < 4; i++ {
		ms, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.3})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		all = append(all, ms)
	}
	for i := 0; i < 2; i++ {
		ms, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.5})
		if err != nil {
			t.Fatalf("create floor 0.5: %v", err)
		}
		all = append(all, ms)
	}
	base := counters.Get(metrics.CounterStormSelectCalls)

	// Kill the downlink the chain actually uses, through ONE session.
	// The storm must replan every affected class once — never once per
	// session.
	host, conv := chainProxy(t, all[0])
	if err := all[0].ApplyFault(fault.Fault{Kind: fault.LinkDown, From: host, To: "d"}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	selects := counters.Get(metrics.CounterStormSelectCalls) - base
	if selects == 0 || selects > 2 {
		t.Fatalf("storm used %d Selects for 6 sessions in 2 classes, want 1..2", selects)
	}
	for _, ms := range all {
		st := ms.State()
		for _, hop := range st.Path {
			if hop == conv {
				t.Errorf("session %s still routes through %s's converter after the link died", ms.ID(), host)
			}
		}
	}
	if leak := stormLeak(m); leak != 0 {
		t.Fatalf("post-storm leak of %v kbps", leak)
	}

	// Manual re-evaluation replans the one class, shared by its twins.
	if _, evalErr, logErr := all[0].ReevaluateReason(ReevalManual); evalErr != nil || logErr != nil {
		t.Fatalf("reevaluate: eval=%v log=%v", evalErr, logErr)
	}
	if st := all[0].State(); st.Step != 1 {
		t.Errorf("step after reevaluate = %d, want 1", st.Step)
	}
	if leak := stormLeak(m); leak != 0 {
		t.Fatalf("post-reevaluate leak of %v kbps", leak)
	}
}

func TestStormRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newPersistent(t, dir, ManagerConfig{Storm: true, Counters: metrics.NewCounters()})

	var all []*Managed
	for i := 0; i < 3; i++ {
		ms, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.3})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		all = append(all, ms)
	}
	ms2, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.5})
	if err != nil {
		t.Fatalf("create floor 0.5: %v", err)
	}
	// A fault-driven storm, a manual replan and a delete, so the
	// journal carries every storm-mode command kind.
	host, _ := chainProxy(t, all[0])
	if err := all[0].ApplyFault(fault.Fault{Kind: fault.LinkDown, From: host, To: "d"}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if _, evalErr, logErr := all[1].ReevaluateReason(ReevalManual); evalErr != nil || logErr != nil {
		t.Fatalf("reevaluate: eval=%v log=%v", evalErr, logErr)
	}
	if ok, err := m.Delete(ms2.ID()); !ok || err != nil {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	want := fingerprints(t, m)
	wantCtrl, err := m.StormController().Fingerprint()
	if err != nil {
		t.Fatalf("controller fingerprint: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2 := newPersistent(t, dir, ManagerConfig{Storm: true, Counters: metrics.NewCounters()})
	defer m2.Close()
	if errs := m2.Recovery().ReplayErrors; len(errs) != 0 {
		t.Fatalf("replay errors: %v", errs)
	}
	got := fingerprints(t, m2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d sessions, want %d", len(got), len(want))
	}
	for id, fp := range want {
		if got[id] != fp {
			t.Errorf("session %s diverged:\n got %s\nwant %s", id, got[id], fp)
		}
	}
	gotCtrl, err := m2.StormController().Fingerprint()
	if err != nil {
		t.Fatalf("recovered controller fingerprint: %v", err)
	}
	if gotCtrl != wantCtrl {
		t.Errorf("controller state diverged:\n got %s\nwant %s", gotCtrl, wantCtrl)
	}
	if leak := stormLeak(m2); leak != 0 {
		t.Fatalf("recovered leak of %v kbps", leak)
	}
	// The ID counter resumes past replayed and deleted sessions.
	ms5, err := m2.Create(CreateSpec{Set: stormSet(), Floor: 0.3})
	if err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
	if ms5.ID() != "s5" {
		t.Errorf("post-recovery id = %q, want s5", ms5.ID())
	}
}

// TestStormCrashMidStormResumes kills the manager after the first class
// fan-out of a two-class storm (the begin and one class record are
// journaled, the end is not) and proves a reopened manager's Reconcile
// finishes the storm to the exact state a crash-free run reaches.
func TestStormCrashMidStormResumes(t *testing.T) {
	run := func(t *testing.T, dir string, halt int) (map[string]string, string) {
		m := newPersistent(t, dir, ManagerConfig{
			Storm: true, Counters: metrics.NewCounters(),
			StormHaltAfterFanouts: halt,
		})
		for i := 0; i < 2; i++ {
			if _, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.3}); err != nil {
				t.Fatalf("create: %v", err)
			}
			if _, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.5}); err != nil {
				t.Fatalf("create floor 0.5: %v", err)
			}
		}
		ms := m.List()[0]
		host, _ := chainProxy(t, ms)
		err := ms.ApplyFault(fault.Fault{Kind: fault.LinkDown, From: host, To: "d"})
		if halt > 0 {
			if !errors.Is(err, storm.ErrHalted) {
				t.Fatalf("halted fault error = %v, want ErrHalted", err)
			}
			// Crash: close the WAL with the storm still open.
			if cerr := m.Close(); cerr != nil {
				t.Fatalf("close: %v", cerr)
			}
			m2 := newPersistent(t, dir, ManagerConfig{Storm: true, Counters: metrics.NewCounters()})
			defer m2.Close()
			rep := m2.Reconcile()
			if rep.Recomposed == 0 {
				t.Fatalf("reconcile resumed nothing: %+v", rep)
			}
			if leak := stormLeak(m2); leak != 0 {
				t.Fatalf("post-resume leak of %v kbps", leak)
			}
			fp, ferr := m2.StormController().Fingerprint()
			if ferr != nil {
				t.Fatalf("fingerprint: %v", ferr)
			}
			return fingerprints(t, m2), fp
		}
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		defer m.Close()
		fp, ferr := m.StormController().Fingerprint()
		if ferr != nil {
			t.Fatalf("fingerprint: %v", ferr)
		}
		return fingerprints(t, m), fp
	}

	wantSess, wantCtrl := run(t, t.TempDir(), 0)
	gotSess, gotCtrl := run(t, t.TempDir(), 1)
	if gotCtrl != wantCtrl {
		t.Errorf("resumed controller diverged from crash-free run:\n got %s\nwant %s", gotCtrl, wantCtrl)
	}
	for id, fp := range wantSess {
		if gotSess[id] != fp {
			t.Errorf("resumed session %s diverged:\n got %s\nwant %s", id, gotSess[id], fp)
		}
	}
}

// TestStormConcurrentReevaluateAndFault races manual per-session
// replans against fault-driven storms over the same classes. Run under
// -race; the invariant is the shared ledger: no double release, no
// leaked kbps, every member still accounted for.
func TestStormConcurrentReevaluateAndFault(t *testing.T) {
	m, _ := newStormManager(t)

	var all []*Managed
	for i := 0; i < 3; i++ {
		ms, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.3})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		all = append(all, ms)
	}
	for i := 0; i < 3; i++ {
		ms, err := m.Create(CreateSpec{Set: stormSet(), Floor: 0.5})
		if err != nil {
			t.Fatalf("create floor 0.5: %v", err)
		}
		all = append(all, ms)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			// ErrStormActive collapses to changed=false — a storm in
			// flight replans the class anyway.
			if _, evalErr, logErr := all[0].ReevaluateReason(ReevalManual); evalErr != nil || logErr != nil {
				t.Errorf("reevaluate: eval=%v log=%v", evalErr, logErr)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			f := fault.Fault{Kind: fault.LossSpike, From: "sender", To: "p2", LossRate: float64(i%5) / 100}
			if err := all[len(all)-1].ApplyFault(f); err != nil {
				t.Errorf("fault: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if leak := stormLeak(m); leak != 0 {
		t.Fatalf("concurrent storms leaked %v kbps", leak)
	}
	ctrl := m.StormController()
	if ctrl.Sessions() != len(all) {
		t.Fatalf("controller lost members: %d, want %d", ctrl.Sessions(), len(all))
	}
	for _, ms := range all {
		if _, ok := ctrl.MemberState(ms.ID()); !ok {
			t.Errorf("member %s vanished", ms.ID())
		}
	}
}
