// Package session manages the lifetime of one adaptation session: it
// composes the initial trans-coding chain, watches the overlay network,
// and re-runs the QoS selection algorithm when the network drifts away
// from what the current chain was negotiated for — the dynamic adaptation
// to "fluctuating network resources" Section 3 calls for.
package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/trace"
)

// Config assembles a session.
type Config struct {
	// Content/Device/Services describe the endpoints and the deployed
	// trans-coding services (hosts stamped).
	Content  *profile.Content
	Device   *profile.Device
	Services []*service.Service
	// Net is the live overlay the session watches.
	Net *overlay.Network
	// SenderHost/ReceiverHost locate the endpoints on the overlay.
	SenderHost, ReceiverHost string
	// Select parameterizes the QoS selection algorithm.
	Select core.Config
	// Tolerance is the satisfaction slack before re-composition: the
	// session switches chains only when a fresh selection would improve
	// satisfaction by more than Tolerance, or when the current chain
	// degraded/broke. Default 0.02.
	Tolerance float64
	// ReserveBandwidth makes the session hold its chain's bitrate on
	// every inter-host link it crosses (admission control): concurrent
	// sessions then compose against the remaining capacity only.
	ReserveBandwidth bool
	// Pool, when set, overrides Services as the composition candidate
	// source: the session composes against Pool.Alive() so failed hosts
	// and deregistered services drop out immediately. Services is still
	// used as the full directory for host lookups.
	Pool ServicePool
	// Failover tunes failure handling; the zero value disables it.
	Failover FailoverConfig
}

// Change records one re-composition. The JSON tags match the session
// status resource httpapi serves.
type Change struct {
	// Reason is "degraded", "broken" or "improved".
	Reason string `json:"reason"`
	// From/To are the chain paths before and after.
	From string `json:"from"`
	To   string `json:"to"`
	// Satisfaction is the post-change satisfaction.
	Satisfaction float64 `json:"satisfaction"`
}

// Session is a live adaptation session.
type Session struct {
	cfg     Config
	current *core.Result
	history []Change
	held    []overlay.Reservation

	// failover state (see failover.go)
	step       int
	degraded   bool
	downSince  int
	quarantine map[string]int // "host:x"/"svc:y" -> expiry step
	failovers  int
	retries    int
	lastErr    error
	jitter     *rand.Rand

	// tr is the trace of the request currently driving the session, set
	// transiently by the *Ctx entry points. It never influences session
	// state, so replayed sessions (which run without one) stay
	// byte-identical to live ones.
	tr *trace.Trace
}

// New composes the initial chain. It fails when no chain exists at all;
// with failover enabled a chain below the satisfaction floor is adopted
// in a degraded state instead of rejected.
func New(cfg Config) (*Session, error) {
	return NewCtx(context.Background(), cfg)
}

// NewCtx is New under a context: when the context carries a trace
// (internal/trace), the initial composition's graph build, selection
// rounds and bandwidth reservation record spans on it.
func NewCtx(ctx context.Context, cfg Config) (*Session, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.02
	}
	s := &Session{cfg: cfg, tr: trace.FromContext(ctx)}
	defer func() { s.tr = nil }()
	res, err := s.compose()
	if err != nil {
		if cfg.Failover.Enabled && errors.Is(err, core.ErrBelowFloor) && res != nil && res.Found {
			s.degraded = true
			s.downSince = 0
			s.lastErr = err
		} else {
			return nil, err
		}
	}
	s.current = res
	if cfg.ReserveBandwidth {
		if err := s.reserveCurrent(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// compose rebuilds the graph from the live services and selects a chain
// at the configured satisfaction floor.
func (s *Session) compose() (*core.Result, error) {
	floor := s.cfg.Select.SatisfactionFloor
	if s.cfg.Failover.Enabled && s.cfg.Failover.SatisfactionFloor > floor {
		floor = s.cfg.Failover.SatisfactionFloor
	}
	return s.composeWith(s.liveServices(), floor)
}

// composeWith builds the graph over the given service set and selects a
// chain. On core.ErrBelowFloor the below-floor result is passed through
// alongside the error so callers can deliberately adopt a degraded chain.
func (s *Session) composeWith(svcs []*service.Service, floor float64) (*core.Result, error) {
	g, err := graph.Build(graph.Input{
		Content:      s.cfg.Content,
		Device:       s.cfg.Device,
		Services:     svcs,
		Net:          s.cfg.Net,
		SenderHost:   s.cfg.SenderHost,
		ReceiverHost: s.cfg.ReceiverHost,
	})
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	sel := s.cfg.Select
	sel.SatisfactionFloor = floor
	// Thread the driving request's trace (if any) into the selection so
	// core.SelectCtx records its spans; a nil trace makes this a plain
	// background context and SelectCtx behaves exactly like Select.
	res, err := core.SelectCtx(trace.NewContext(context.Background(), s.tr), g, sel)
	if err != nil {
		return res, fmt.Errorf("session: %w", err)
	}
	return res, nil
}

// Result returns the current chain.
func (s *Session) Result() *core.Result { return s.current }

// History returns the recorded re-compositions.
func (s *Session) History() []Change { return s.history }

// Recompositions returns how many times the session switched chains.
func (s *Session) Recompositions() int { return len(s.history) }

// currentAchievable re-scores the current chain under the present
// network: it rebuilds the graph and evaluates the current path's edges.
// ok is false when the chain no longer exists (an edge disappeared or can
// no longer carry the stream).
func (s *Session) currentAchievable() (float64, bool) {
	g, err := graph.Build(graph.Input{
		Content:      s.cfg.Content,
		Device:       s.cfg.Device,
		Services:     s.liveServices(),
		Net:          s.cfg.Net,
		SenderHost:   s.cfg.SenderHost,
		ReceiverHost: s.cfg.ReceiverHost,
	})
	if err != nil {
		return 0, false
	}
	edges := make([]*graph.Edge, 0, len(s.current.Formats))
	at := graph.SenderID
	for i, to := range s.current.Path[1:] {
		var found *graph.Edge
		for _, e := range g.Out(at) {
			if e.To == to && e.Format == s.current.Formats[i] {
				found = e
				break
			}
		}
		if found == nil {
			return 0, false
		}
		edges = append(edges, found)
		at = to
	}
	_, sat, _, ok := core.EvalPath(g, s.cfg.Select, edges)
	return sat, ok
}

// Reevaluate checks the session against the current network state and
// re-composes when warranted. It returns whether the chain changed.
// When even a fresh composition fails (network partitioned), the session
// keeps its last chain and reports the error. A reserving session
// releases its share for the duration of the check so its own
// reservation does not masquerade as congestion, then re-admits the
// chain it ends up with.
func (s *Session) Reevaluate() (changed bool, err error) {
	return s.ReevaluateCtx(context.Background())
}

// ReevaluateCtx is Reevaluate under a context: a trace carried by the
// context records the re-composition's graph/selection/reservation spans.
func (s *Session) ReevaluateCtx(ctx context.Context) (changed bool, err error) {
	s.tr = trace.FromContext(ctx)
	defer func() { s.tr = nil }()
	if s.cfg.ReserveBandwidth {
		s.releaseCurrent()
		defer func() {
			if rerr := s.reserveCurrent(); rerr != nil && err == nil {
				err = rerr
			}
		}()
	}
	return s.reevaluate()
}

func (s *Session) reevaluate() (bool, error) {
	achievable, alive := s.currentAchievable()

	if s.cfg.Failover.Enabled && !alive {
		// The chain lost an edge (host crash, link failure, service
		// gone): enter the failover loop instead of erroring out.
		return s.failover(fmt.Errorf("session: current chain broken"))
	}

	fresh, err := s.compose()
	if err != nil {
		if !alive {
			return false, fmt.Errorf("session: current chain broken and no replacement: %w", err)
		}
		// Current chain still works; stay on it (with failover enabled
		// this includes fresh candidates below the satisfaction floor).
		return false, nil
	}

	if s.degraded {
		// A healthy chain is available again — recover through the
		// failover bookkeeping so the outage is accounted for.
		s.adoptFailover(fresh, "recovered", 0)
		return true, nil
	}

	reason := ""
	switch {
	case !alive:
		reason = "broken"
	case achievable < s.current.Satisfaction-s.cfg.Tolerance:
		// The network degraded under the current chain.
		reason = "degraded"
	case fresh.Satisfaction > achievable+s.cfg.Tolerance:
		// A different chain is now substantially better.
		reason = "improved"
	default:
		// Keep the current chain, but track its achievable level.
		s.current.Satisfaction = achievable
		return false, nil
	}

	s.recordChange(reason, fresh)
	return true, nil
}

// Hosts returns the ordered hosts of the current chain (sender host,
// service hosts, receiver host), used to decide whether a network event
// touches the session.
func (s *Session) Hosts() []string {
	hosts := []string{s.cfg.SenderHost}
	for _, id := range s.current.Path[1 : len(s.current.Path)-1] {
		for _, svc := range s.cfg.Services {
			if service.ID(id) == svc.ID {
				hosts = append(hosts, svc.Host)
				break
			}
		}
	}
	return append(hosts, s.cfg.ReceiverHost)
}

// Touches reports whether a network event concerns a link between
// consecutive hosts of the current chain.
func (s *Session) Touches(ev overlay.Event) bool {
	hosts := s.Hosts()
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] == ev.From && hosts[i] == ev.To {
			return true
		}
	}
	return false
}

// OnNetworkChange handles one overlay event: when it touches the current
// chain the session re-evaluates immediately; unrelated events are
// ignored (a fresh chain may still be picked up by periodic Reevaluate
// calls).
func (s *Session) OnNetworkChange(ev overlay.Event) (bool, error) {
	if !s.Touches(ev) {
		return false, nil
	}
	return s.Reevaluate()
}
