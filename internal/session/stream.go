package session

import (
	"fmt"

	"qoschain/internal/graph"
	"qoschain/internal/pipeline"
)

// Stream instantiates the session's current chain as a concurrent
// trans-coding pipeline and pushes n synthetic source frames through it.
// The pipeline is built against the *current* overlay state, so a
// degraded link shows up as loss even before the next re-evaluation.
func (s *Session) Stream(n int, opts pipeline.Options) (pipeline.Stats, error) {
	if s.current == nil || !s.current.Found {
		return pipeline.Stats{}, fmt.Errorf("session: no active chain to stream")
	}
	g, err := graph.Build(graph.Input{
		Content:      s.cfg.Content,
		Device:       s.cfg.Device,
		Services:     s.cfg.Services,
		Net:          s.cfg.Net,
		SenderHost:   s.cfg.SenderHost,
		ReceiverHost: s.cfg.ReceiverHost,
	})
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("session: %w", err)
	}
	if opts.Bitrate == nil {
		opts.Bitrate = s.cfg.Select.Bitrate
	}
	p, err := pipeline.FromResult(g, s.current, opts)
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("session: %w", err)
	}
	return p.Run(n), nil
}
