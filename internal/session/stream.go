package session

import (
	"fmt"

	"qoschain/internal/graph"
	"qoschain/internal/pipeline"
)

// Stream instantiates the session's current chain as a concurrent
// trans-coding pipeline and pushes n synthetic source frames through it.
// The pipeline is built against the *current* overlay state, so a
// degraded link shows up as loss even before the next re-evaluation.
func (s *Session) Stream(n int, opts pipeline.Options) (pipeline.Stats, error) {
	p, err := s.pipeline(opts)
	if err != nil {
		return pipeline.Stats{}, err
	}
	return p.Run(n), nil
}

// StreamOn is Stream multiplexed over a shared executor: the chain is
// submitted to ex's worker pool instead of spawning its own goroutines,
// which is how a daemon runs thousands of concurrent sessions' data
// planes. It blocks until the chain drains (or fails/cancels).
func (s *Session) StreamOn(ex *pipeline.Executor, n int, opts pipeline.Options) (pipeline.Stats, error) {
	p, err := s.pipeline(opts)
	if err != nil {
		return pipeline.Stats{}, err
	}
	h, err := ex.Submit(p, n)
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("session: %w", err)
	}
	return h.Wait(), nil
}

// pipeline builds a fresh chain instance from the session's current
// selection result against the current overlay state. Session-level
// defaults are applied: the selection's bitrate model, and the failover
// metrics sink (so pipeline.* series land next to failover.* ones)
// unless the caller supplies their own.
func (s *Session) pipeline(opts pipeline.Options) (*pipeline.Pipeline, error) {
	if s.current == nil || !s.current.Found {
		return nil, fmt.Errorf("session: no active chain to stream")
	}
	g, err := graph.Build(graph.Input{
		Content:      s.cfg.Content,
		Device:       s.cfg.Device,
		Services:     s.cfg.Services,
		Net:          s.cfg.Net,
		SenderHost:   s.cfg.SenderHost,
		ReceiverHost: s.cfg.ReceiverHost,
	})
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	if opts.Bitrate == nil {
		opts.Bitrate = s.cfg.Select.Bitrate
	}
	if opts.Metrics == nil {
		opts.Metrics = s.cfg.Failover.Metrics
	}
	p, err := pipeline.FromResult(g, s.current, opts)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return p, nil
}
