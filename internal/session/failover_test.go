package session

import (
	"testing"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/metrics"
)

// failoverBed extends the shared testbed with a live service pool and an
// enabled failover loop whose sleeps are recorded, not slept.
func failoverBed(t *testing.T, floor float64) (Config, *fault.ServiceSet, *metrics.Counters, *[]time.Duration) {
	t.Helper()
	cfg, _ := testbed(t)
	pool := fault.NewServiceSet(cfg.Services)
	m := metrics.NewCounters()
	var slept []time.Duration
	cfg.Pool = pool
	cfg.Failover = FailoverConfig{
		Enabled:           true,
		MaxRetries:        3,
		JitterSeed:        7,
		Sleep:             func(d time.Duration) { slept = append(slept, d) },
		QuarantineSteps:   4,
		SatisfactionFloor: floor,
		Metrics:           m,
	}
	return cfg, pool, m, &slept
}

// crash takes a host out of both the overlay and the live pool, the way
// the fault injector does.
func crash(t *testing.T, cfg Config, pool *fault.ServiceSet, host string) {
	t.Helper()
	if err := cfg.Net.FailHost(host); err != nil {
		t.Fatal(err)
	}
	pool.SetHostDown(host, true)
}

func TestFailoverRecomposesAfterHostCrash(t *testing.T) {
	cfg, pool, m, slept := failoverBed(t, 0.5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if core.PathString(s.Result().Path) != "sender,conv-a,receiver" {
		t.Fatalf("initial path = %s", core.PathString(s.Result().Path))
	}

	crash(t, cfg, pool, "pa")
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Fatalf("after crash: changed=%v path=%s", changed, core.PathString(s.Result().Path))
	}
	// conv-b delivers 20/30 fps = 0.667, above the 0.5 floor: a clean
	// recovery on the first attempt, no backoff sleeps.
	if s.Degraded() {
		t.Error("recovered session must not be degraded")
	}
	if m.Get(metrics.CounterFailovers) != 1 || m.Get(metrics.CounterRecovered) != 1 {
		t.Errorf("counters = %v", m.Snapshot())
	}
	if len(*slept) != 0 {
		t.Errorf("first-attempt recovery slept %v", *slept)
	}
	if rs := m.Sample(metrics.SampleRecoverySteps); len(rs) != 1 {
		t.Errorf("recovery steps sample = %v", rs)
	}
	st := s.FailoverStatus()
	if !st.Enabled || st.Degraded || st.Failovers != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestFailoverUnrecoverableEndsDegradedNotHung(t *testing.T) {
	cfg, pool, m, slept := failoverBed(t, 0.5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := core.PathString(s.Result().Path)

	crash(t, cfg, pool, "pa")
	crash(t, cfg, pool, "pb")
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatalf("total partition must degrade, not error: %v", err)
	}
	if changed {
		t.Error("nothing to switch to")
	}
	if !s.Degraded() {
		t.Fatal("session must be degraded")
	}
	// Kept the last chain rather than dropping to nothing.
	if core.PathString(s.Result().Path) != before {
		t.Errorf("chain after partition = %s", core.PathString(s.Result().Path))
	}
	// The retry budget was spent: MaxRetries backoff sleeps, all bounded.
	if len(*slept) != 3 {
		t.Errorf("slept %d times, want 3", len(*slept))
	}
	if m.Get(metrics.CounterDegraded) != 1 || m.Get(metrics.CounterRetries) != 3 {
		t.Errorf("counters = %v", m.Snapshot())
	}
	if st := s.FailoverStatus(); st.LastError == "" {
		t.Error("degraded status must carry the last error")
	}
}

func TestFailoverAdoptsBelowFloorChainGracefully(t *testing.T) {
	// Floor 0.9: after pa dies only conv-b (satisfaction 0.667) exists.
	// Graceful degradation must adopt it rather than keep a dead chain.
	cfg, pool, _, _ := failoverBed(t, 0.9)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crash(t, cfg, pool, "pa")
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Fatalf("changed=%v path=%s", changed, core.PathString(s.Result().Path))
	}
	if !s.Degraded() {
		t.Error("below-floor adoption must leave the session degraded")
	}
	last := s.History()[len(s.History())-1]
	if last.Reason != "failover-degraded" {
		t.Errorf("reason = %s", last.Reason)
	}
}

func TestDegradedSessionRecoversWhenHostReturns(t *testing.T) {
	cfg, pool, m, _ := failoverBed(t, 0.9)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crash(t, cfg, pool, "pa")
	if _, err := s.Reevaluate(); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("setup: expected degraded session")
	}

	// Host comes back; the next reevaluation recovers above the floor.
	if err := cfg.Net.RecoverHost("pa"); err != nil {
		t.Fatal(err)
	}
	pool.SetHostDown("pa", false)
	s.Tick()
	s.Tick()
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || s.Degraded() {
		t.Fatalf("changed=%v degraded=%v", changed, s.Degraded())
	}
	if core.PathString(s.Result().Path) != "sender,conv-a,receiver" {
		t.Errorf("path = %s", core.PathString(s.Result().Path))
	}
	last := s.History()[len(s.History())-1]
	if last.Reason != "recovered" {
		t.Errorf("reason = %s", last.Reason)
	}
	// Two ticks passed while degraded.
	if rs := m.Sample(metrics.SampleRecoverySteps); len(rs) != 1 || rs[0] != 2 {
		t.Errorf("recovery steps = %v", rs)
	}
}

func TestOnStageFailureQuarantinesAndFailsOver(t *testing.T) {
	cfg, _, m, _ := failoverBed(t, 0.5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The running conv-a stage dies mid-stream (pipeline StageFailure).
	changed, err := s.OnStageFailure("conv-a")
	if err != nil {
		t.Fatal(err)
	}
	if !changed || core.PathString(s.Result().Path) != "sender,conv-b,receiver" {
		t.Fatalf("changed=%v path=%s", changed, core.PathString(s.Result().Path))
	}
	q := s.Quarantined()
	if len(q) != 2 || q[0] != "host:pa" || q[1] != "svc:conv-a" {
		t.Errorf("quarantine = %v", q)
	}
	if m.Get(metrics.CounterQuarantined) != 2 {
		t.Errorf("quarantined counter = %d", m.Get(metrics.CounterQuarantined))
	}
}

func TestQuarantineExpiryReadmitsHost(t *testing.T) {
	cfg, _, _, _ := failoverBed(t, 0.5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OnStageFailure("conv-a"); err != nil {
		t.Fatal(err)
	}
	// While quarantined, reevaluation must not return to conv-a even
	// though the host is healthy in the overlay.
	if changed, _ := s.Reevaluate(); changed {
		t.Fatal("quarantined host must stay excluded")
	}
	// After QuarantineSteps ticks the host is re-admitted and the better
	// chain is picked back up.
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	if len(s.Quarantined()) != 0 {
		t.Fatalf("quarantine after expiry = %v", s.Quarantined())
	}
	changed, err := s.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || core.PathString(s.Result().Path) != "sender,conv-a,receiver" {
		t.Fatalf("changed=%v path=%s", changed, core.PathString(s.Result().Path))
	}
}

// TestFailoverUnderSeededSchedule drives a session through a scripted
// injector schedule — the acceptance scenario: the active chain's host
// is killed mid-run, the session re-composes within its retry budget,
// and after the bounded outage it returns to the better chain.
func TestFailoverUnderSeededSchedule(t *testing.T) {
	cfg, pool, m, _ := failoverBed(t, 0.5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(cfg.Net, pool, []fault.Fault{
		{AtStep: 3, Kind: fault.HostCrash, Host: "pa", RecoverAfter: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	paths := make([]string, 0, 12)
	for step := 1; step <= 12; step++ {
		inj.Step()
		s.Tick()
		if _, err := s.Reevaluate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		paths = append(paths, core.PathString(s.Result().Path))
	}
	// Steps 1-2: healthy on conv-a. Steps 3-6: crashed, on conv-b.
	// Step 7+: recovered, back on conv-a.
	if paths[1] != "sender,conv-a,receiver" {
		t.Errorf("pre-crash path = %s", paths[1])
	}
	if paths[3] != "sender,conv-b,receiver" {
		t.Errorf("mid-outage path = %s", paths[3])
	}
	if paths[11] != "sender,conv-a,receiver" {
		t.Errorf("post-recovery path = %s", paths[11])
	}
	if s.Degraded() {
		t.Error("session must end healthy")
	}
	if m.Get(metrics.CounterFailovers) != 1 || m.Get(metrics.CounterRecovered) != 1 {
		t.Errorf("counters = %v", m.Snapshot())
	}
}

func TestDisabledFailoverKeepsStrictErrors(t *testing.T) {
	cfg, net := testbed(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailHost("pa"); err != nil {
		t.Fatal(err)
	}
	if err := net.FailHost("pb"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reevaluate(); err == nil {
		t.Error("plain sessions must still error on total partition")
	}
	if s.Degraded() {
		t.Error("plain sessions never degrade")
	}
}
