package session

// qos.go is the manager's QoS SLO tracking for the default
// (non-storm-attached) mode: per-session satisfaction telemetry fed
// from every composition and re-evaluation. The hooks fire on BOTH the
// live command path and journal replay — the registry is in-memory, so
// a restarted or replica manager rebuilds the same qos.* series from
// the WAL the primary journaled. Writes go only to ManagerConfig.
// Counters (the daemon-wide sink), never to the per-session private
// counters: those feed State.Counters and therefore Fingerprint, and
// SLO telemetry must not perturb the byte-identity the crash and
// failover harnesses compare.
//
// In storm-attached mode the embedded controller owns these series
// instead (internal/storm/qos.go); a process runs exactly one of the
// two writers.

import "qoschain/internal/metrics"

// qosNoteLocked records one observation of the session's SLO state.
// Callers hold ms.mu (or own the session exclusively, as during build
// and single-threaded replay). Attached sessions are the storm
// controller's responsibility.
func (ms *Managed) qosNoteLocked() {
	if ms.attached {
		return
	}
	sat := ms.sess.Result().Satisfaction
	below := ms.sess.FailoverStatus().Degraded
	m := ms.m
	cc := m.cfg.Counters
	m.qosMu.Lock()
	cc.Observe(metrics.SampleQoSSatisfaction, sat)
	if below {
		cc.Inc(metrics.CounterQoSBelowFloorSeconds)
		if !ms.qosBelow {
			cc.Inc(metrics.CounterQoSFloorBreaches)
			m.qosDegraded++
		}
	} else if ms.qosBelow {
		m.qosDegraded--
	}
	ms.qosBelow = below
	cc.SetGauge(metrics.GaugeQoSDegradedSessions, float64(m.qosDegraded))
	cc.SetGauge(metrics.GaugeQoSBurnRate, m.qosBurn.Observe(below))
	m.qosMu.Unlock()
}

// qosDrop retires a session's SLO contribution on delete.
func (ms *Managed) qosDrop() {
	if ms.attached {
		return
	}
	m := ms.m
	m.qosMu.Lock()
	if ms.qosBelow {
		ms.qosBelow = false
		m.qosDegraded--
		m.cfg.Counters.SetGauge(metrics.GaugeQoSDegradedSessions, float64(m.qosDegraded))
	}
	m.qosMu.Unlock()
}
