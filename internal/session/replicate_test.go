package session

import (
	"testing"

	"qoschain/internal/fault"
	"qoschain/internal/journal"
)

// shipOnce drains the primary's journal suffix into the replica,
// exactly as the cluster shipper does: match offsets, verify the chain,
// apply verbatim.
func shipOnce(t *testing.T, primary, replica *Manager) {
	t.Helper()
	for {
		b, err := primary.ReadShip(replica.LastSeq(), 0)
		if err != nil {
			t.Fatalf("ReadShip: %v", err)
		}
		if b.Snapshot != nil {
			t.Fatalf("unexpected snapshot fallback at offset %d", replica.LastSeq())
		}
		if len(b.Records) == 0 {
			return
		}
		if b.FromSeq != replica.LastSeq() || b.FromChain != replica.LastChain() {
			t.Fatalf("batch offset (%d) does not match replica (%d)", b.FromSeq, replica.LastSeq())
		}
		if err := journal.VerifyShip(b); err != nil {
			t.Fatalf("VerifyShip: %v", err)
		}
		if _, err := replica.ApplyReplicated(b.Records); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
	}
}

func TestReplicatedApplyIsByteIdentical(t *testing.T) {
	primary := newPersistent(t, t.TempDir(), ManagerConfig{IDPrefix: "n1-"})
	defer primary.Close()
	// The replica disables periodic snapshots: its journal must mirror
	// the primary's records verbatim, compaction is the primary's call.
	replica := newPersistent(t, t.TempDir(), ManagerConfig{IDPrefix: "n1-", SnapshotEvery: -1})
	defer replica.Close()

	ms, err := primary.Create(CreateSpec{Set: managerSet(), Floor: 0.3, Seed: 7, Reserve: true})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if ms.ID() != "n1-s1" {
		t.Fatalf("prefixed id = %q, want n1-s1", ms.ID())
	}
	ms2, err := primary.Create(CreateSpec{Set: managerSet(), Seed: 11, Reserve: true})
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	shipOnce(t, primary, replica)

	// Mutate: fault + failover on one session, tick the other, delete
	// nothing — then ship the increment.
	if err := ms.ApplyFault(fault.Fault{Kind: fault.HostCrash, Host: "p1"}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if _, _, logErr := ms.Reevaluate(); logErr != nil {
		t.Fatalf("reevaluate: %v", logErr)
	}
	if _, _, logErr := ms2.Reevaluate(); logErr != nil {
		t.Fatalf("reevaluate 2: %v", logErr)
	}
	shipOnce(t, primary, replica)

	if replica.LastSeq() != primary.LastSeq() || replica.LastChain() != primary.LastChain() {
		t.Fatalf("replica offset (%d) diverged from primary (%d)", replica.LastSeq(), primary.LastSeq())
	}
	want, got := fingerprints(t, primary), fingerprints(t, replica)
	if len(got) != len(want) {
		t.Fatalf("replica has %d sessions, want %d", len(got), len(want))
	}
	for id, fp := range want {
		if got[id] != fp {
			t.Errorf("session %s state diverged:\n got %s\nwant %s", id, got[id], fp)
		}
	}

	// Deletes replicate too.
	if _, err := primary.Delete(ms2.ID()); err != nil {
		t.Fatalf("delete: %v", err)
	}
	shipOnce(t, primary, replica)
	if _, ok := replica.Get(ms2.ID()); ok {
		t.Fatal("deleted session still live on replica")
	}
}

func TestReplicatedApplyRejectsDiscontinuity(t *testing.T) {
	primary := newPersistent(t, t.TempDir(), ManagerConfig{IDPrefix: "n1-"})
	defer primary.Close()
	replica := newPersistent(t, t.TempDir(), ManagerConfig{IDPrefix: "n1-", SnapshotEvery: -1})
	defer replica.Close()

	if _, err := primary.Create(CreateSpec{Set: managerSet(), Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Create(CreateSpec{Set: managerSet(), Seed: 4}); err != nil {
		t.Fatal(err)
	}
	b, err := primary.ReadShip(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Skipping the first record must be rejected atomically: no record
	// of the batch applies, the replica stays at offset 0.
	if _, err := replica.ApplyReplicated(b.Records[1:]); err == nil {
		t.Fatal("discontinuous batch applied")
	}
	if replica.LastSeq() != 0 || len(replica.List()) != 0 {
		t.Fatalf("rejected batch moved the replica to seq %d with %d sessions", replica.LastSeq(), len(replica.List()))
	}
	// The full batch from the true offset applies.
	if _, err := replica.ApplyReplicated(b.Records); err != nil {
		t.Fatalf("pristine batch: %v", err)
	}
	if replica.LastSeq() != primary.LastSeq() {
		t.Fatalf("replica at %d, want %d", replica.LastSeq(), primary.LastSeq())
	}
}

func TestReadShipFallsBackToSnapshot(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery 1 compacts after every command, so a fresh follower
	// can never catch up incrementally from offset 0.
	primary := newPersistent(t, dir, ManagerConfig{IDPrefix: "n1-", SnapshotEvery: 1})
	defer primary.Close()
	ms, err := primary.Create(CreateSpec{Set: managerSet(), Seed: 5, Reserve: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, logErr := ms.Reevaluate(); logErr != nil {
		t.Fatal(logErr)
	}

	b, err := primary.ReadShip(0, 0)
	if err != nil {
		t.Fatalf("ReadShip after compaction: %v", err)
	}
	if b.Snapshot == nil {
		t.Fatal("expected snapshot fallback")
	}

	// Bootstrap a replica from the shipped snapshot; its recovery path
	// rebuilds the sessions, and incremental shipping resumes.
	rdir := t.TempDir()
	if err := journal.Bootstrap(rdir, b.Snapshot); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	replica := newPersistent(t, rdir, ManagerConfig{IDPrefix: "n1-", SnapshotEvery: -1})
	defer replica.Close()
	if replica.LastSeq() != b.Snapshot.Seq {
		t.Fatalf("bootstrapped replica at %d, want snapshot seq %d", replica.LastSeq(), b.Snapshot.Seq)
	}
	if _, err := replica.ApplyReplicated(b.Records); err != nil {
		t.Fatalf("apply post-snapshot records: %v", err)
	}
	want, got := fingerprints(t, primary), fingerprints(t, replica)
	for id, fp := range want {
		if got[id] != fp {
			t.Errorf("session %s diverged after snapshot bootstrap", id)
		}
	}
}
