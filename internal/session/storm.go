package session

// storm.go is the manager's storm-attached mode: the daemon-side
// unification of the session manager and the storm controller
// (internal/storm). Instead of giving every /v1/sessions create its own
// private overlay and failover loop, the manager derives a shared
// region from the session's network profile, folds the session into a
// storm equivalence class (fingerprint-keyed ClassSpec), and lets the
// controller own all re-composition — one Select per affected class per
// event, one atomic SwapChain per member, one reservation ledger (the
// region overlay) instead of the manager and controller double-tracking
// holds.
//
// Durability inverts the standalone controller's layout: the controller
// journals nothing itself. Its storm fan-out records flow through the
// manager's WAL (Config.Sink → walEvent{Op: "storm"}), interleaved in
// true order with the create/fault/reevaluate/delete commands, and
// class membership is derived state — replaying the manager's commands
// re-attaches every session and re-marks every pending link, while the
// storm records replay their recorded plans verbatim (no Select). That
// one WAL is exactly what the cluster tier ships, so a follower's
// replica manager rebuilds the full class state for free, and a primary
// that dies mid-storm leaves a begin-without-end the promoted follower
// finishes via ResumeOpenStorm — in the recorded priority order, with
// byte-identical resulting fingerprints.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"qoschain/internal/fault"
	"qoschain/internal/graph"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/storm"
)

// StormController exposes the embedded controller (nil unless the
// manager runs in storm-attached mode) — the daemon mounts its Status
// on /healthz and the harnesses read fingerprints off it.
func (m *Manager) StormController() *storm.Controller { return m.storm }

// stormSink is the controller's journal: storm records append to the
// manager's WAL as Op "storm" commands, in true order relative to the
// session commands around them. Called with the controller's lock held;
// takes only m.mu (never attachMu), so it cannot deadlock against
// creates, which take the controller's lock without holding m.mu.
func (m *Manager) stormSink(kind string, data json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journalCommand(walEvent{Op: "storm", Kind: kind, Data: data})
}

// stormRegionName fingerprints the infrastructure half of a profile set
// — the network topology and deployed intermediaries — into a region
// name, so sessions created over the same infrastructure share one
// overlay and one service pool.
func stormRegionName(set *profile.Set) string {
	data, err := json.Marshal(struct {
		Network        any `json:"network"`
		Intermediaries any `json:"intermediaries"`
	}{set.Network, set.Intermediaries})
	if err != nil {
		return "r-unmarshalable"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("r%016x", h.Sum64())
}

// buildAttached validates a spec and attaches a session to its storm
// equivalence class under the given ID — the single path live creation
// and replay share, mirroring buildManaged. Region and class
// registration are idempotent; only the first session of a fingerprint
// pays for a Select.
func (m *Manager) buildAttached(id string, spec CreateSpec) (*Managed, error) {
	set := spec.Set
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	satProfile, err := set.User.SatisfactionProfile(profile.ContactClass(spec.Contact))
	if err == nil {
		err = satProfile.Validate()
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	regionName := stormRegionName(&set)
	if !m.storm.HasRegion(regionName) {
		net, err := overlay.FromProfile(set.Network)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		svcs := graph.CollectServices(set.Intermediaries)
		if err := m.storm.EnsureRegion(storm.Region{
			Name:       regionName,
			Net:        net,
			Services:   svcs,
			SenderHost: "sender",
			// ReceiverHost stays empty: each class resolves its receiver
			// to its own device ID, matching the non-storm session path.
		}); err != nil {
			return nil, err
		}
	}
	cls, err := m.storm.EnsureClass(storm.ClassSpec{
		Region:  regionName,
		Content: set.Content,
		Device:  set.Device,
		User:    set.User,
		Contact: profile.ContactClass(spec.Contact),
		Floor:   spec.Floor,
	})
	if err != nil {
		return nil, err
	}
	if _, err := m.storm.AttachSession(cls.Key(), id); err != nil {
		return nil, err
	}
	return &Managed{
		m:        m,
		id:       id,
		net:      m.storm.RegionNet(regionName),
		pool:     fault.NewServiceSet(nil),
		counters: metrics.NewCounters(),
		attached: true,
		classKey: cls.Key(),
		region:   regionName,
	}, nil
}

// createAttachedCtx is the storm-mode CreateCtx. attachMu serializes
// attach order with journal order across concurrent creates and
// deletes, so replay reserves against the shared region overlay in the
// same sequence the live path did.
func (m *Manager) createAttachedCtx(ctx context.Context, spec CreateSpec) (*Managed, error) {
	m.attachMu.Lock()
	defer m.attachMu.Unlock()
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("%ss%d", m.cfg.IDPrefix, m.seq)
	m.mu.Unlock()
	ms, err := m.buildAttached(id, spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessions[id] = ms
	return ms, m.journalTraced(ctx, walEvent{Op: "create", ID: id, Create: &spec})
}

// deleteAttached is the storm-mode Delete: detach (releasing the hold
// on the shared overlay) and journal.
func (m *Manager) deleteAttached(id string) (bool, error) {
	m.attachMu.Lock()
	defer m.attachMu.Unlock()
	m.mu.Lock()
	_, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return false, nil
	}
	delete(m.sessions, id)
	m.mu.Unlock()
	detachErr := m.storm.DetachSession(id)
	m.mu.Lock()
	err := m.journalCommand(walEvent{Op: "delete", ID: id})
	m.mu.Unlock()
	if err == nil {
		err = detachErr
	}
	return true, err
}

// applyRegionFault mutates the shared region overlay and marks the
// fault's changed-link set pending for the next storm — the one
// mutation path live faults and replayed faults share. Mutations are
// idempotent (a host two sessions both crash fails once), because in a
// shared region the same physical event can arrive through more than
// one session. Service faults need per-session pools and are not
// supported in storm mode.
func (m *Manager) applyRegionFault(regionName string, f fault.Fault) error {
	net := m.storm.RegionNet(regionName)
	if net == nil {
		return fmt.Errorf("session: unknown region %q", regionName)
	}
	switch f.Kind {
	case fault.HostCrash:
		if !net.HostDown(f.Host) {
			if err := net.FailHost(f.Host); err != nil {
				return err
			}
		}
	case fault.HostRecover:
		if net.HostDown(f.Host) {
			if err := net.RecoverHost(f.Host); err != nil {
				return err
			}
		}
	case fault.LinkDown:
		if !net.LinkDown(f.From, f.To) {
			if err := net.FailLink(f.From, f.To); err != nil {
				return err
			}
		}
	case fault.LinkUp:
		if net.LinkDown(f.From, f.To) {
			if err := net.RecoverLink(f.From, f.To); err != nil {
				return err
			}
		}
	case fault.BandwidthCollapse:
		found := false
		for _, l := range net.Snapshot().Links {
			if l.From == f.From && l.To == f.To {
				if err := net.SetBandwidth(f.From, f.To, l.BandwidthKbps*f.Factor); err != nil {
					return err
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("session: no link %s->%s", f.From, f.To)
		}
	case fault.LossSpike:
		if err := net.SetLoss(f.From, f.To, f.LossRate); err != nil {
			return err
		}
	case fault.DelaySpike:
		if err := net.SetDelay(f.From, f.To, f.DelayMs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("session: fault kind %q unsupported in storm mode", f.Kind)
	}
	links := fault.ChangedLinks([]fault.Fault{f}, net)
	return m.storm.NotePending(regionName, links)
}

// applyFaultAttachedCtx is the storm-mode fault path: mutate the shared
// overlay, journal the command, then absorb the changed-link set with a
// storm — O(affected classes) Selects, not O(sessions). A storm already
// in flight keeps the links pending; they are absorbed by the next one.
func (ms *Managed) applyFaultAttachedCtx(ctx context.Context, f fault.Fault) error {
	m := ms.m
	if err := m.applyRegionFault(ms.region, f); err != nil {
		return err
	}
	m.mu.Lock()
	err := m.journalTraced(ctx, walEvent{Op: "fault", ID: ms.id, Fault: &f})
	m.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := m.storm.Storm(); err != nil && !errors.Is(err, storm.ErrStormActive) {
		return err
	}
	return nil
}

// noteReason records a reevaluate attribution on both the session's
// private deterministic counters and the daemon-wide sink — the
// storm-mode mirror of Session.NoteReevaluateReason.
func (ms *Managed) noteReason(reason string) {
	if reason == "" {
		return
	}
	ms.counters.Inc(metrics.CounterReevalPrefix + reason)
	ms.m.cfg.Counters.Inc(metrics.CounterReevalPrefix + reason)
}

// reevaluateAttachedCtx is the storm-mode re-evaluation: a single-class
// storm over the session's equivalence class. Every class member gets
// the refreshed plan — re-evaluating one session of a class and not its
// twins would be a contradiction in terms.
func (ms *Managed) reevaluateAttachedCtx(ctx context.Context, reason string) (changed bool, evalErr, logErr error) {
	m := ms.m
	ms.mu.Lock()
	ms.step++
	ms.noteReason(reason)
	ms.mu.Unlock()
	m.mu.Lock()
	logErr = m.journalTraced(ctx, walEvent{Op: "reevaluate", ID: ms.id, Reason: reason})
	m.mu.Unlock()
	rep, err := m.storm.ReplanClass(ms.classKey)
	if err != nil {
		if errors.Is(err, storm.ErrStormActive) {
			// A storm in flight will re-plan the class anyway.
			return false, nil, logErr
		}
		return false, err, logErr
	}
	for _, out := range rep.Classes {
		if out.Outcome == storm.OutcomeReplanned || out.Outcome == storm.OutcomeDegraded {
			changed = true
		}
	}
	return changed, nil, logErr
}

// replayAttached re-applies one command against an attached session
// during recovery. Faults re-mutate the shared overlay and re-mark
// pending links but never trigger a storm — the journaled storm records
// replay the fan-outs exactly as they happened. Reevaluates restore the
// virtual clock and counters only, for the same reason.
func (ms *Managed) replayAttached(ev walEvent) error {
	switch ev.Op {
	case "fault":
		if ev.Fault == nil {
			return fmt.Errorf("fault command without fault")
		}
		return ms.m.applyRegionFault(ms.region, *ev.Fault)
	case "reevaluate":
		ms.step++
		ms.noteReason(ev.Reason)
		return nil
	default:
		return fmt.Errorf("unknown session op %q", ev.Op)
	}
}

// attachedStateLocked builds the State view of an attached session from
// its class membership. Callers hold ms.mu.
func (ms *Managed) attachedStateLocked() State {
	v, _ := ms.m.storm.MemberState(ms.id)
	st := State{
		ID:             ms.id,
		Satisfaction:   v.Satisfaction,
		Cost:           v.Cost,
		Step:           ms.step,
		Recompositions: v.Swaps,
		Failover:       FailoverStatus{Enabled: true, Degraded: v.Degraded},
		Counters:       ms.counters.Snapshot(),
	}
	if ms.net != nil {
		st.DownHosts = ms.net.DownHosts()
		sort.Strings(st.DownHosts)
	}
	for _, id := range v.Path {
		st.Path = append(st.Path, string(id))
	}
	for _, f := range v.Formats {
		st.Formats = append(st.Formats, f.String())
	}
	if len(v.Held) > 0 {
		st.Reserved = make(map[string]float64, len(v.Held))
		for _, r := range v.Held {
			st.Reserved[r.From+"->"+r.To] += r.Kbps
		}
	}
	return st
}

// reconcileStorm is the storm-mode post-recovery sweep. First any storm
// the journal left open (begin without end — the previous primary died
// mid-fan-out) is finished in its recorded priority order; the resumed
// fan-outs journal live through the sink like any other. Then every
// member's holds are audited against the region overlay: holds sitting
// on dead links mark those links pending, and one storm absorbs the
// whole batch — class-at-a-time, never per-session.
func (m *Manager) reconcileStorm() *ReconcileReport {
	rep := &ReconcileReport{}
	resumed, err := m.storm.ResumeOpenStorm()
	if err != nil {
		m.mu.Lock()
		m.replayError(fmt.Sprintf("storm resume: %v", err))
		m.mu.Unlock()
	}
	for _, ms := range m.List() {
		if !ms.attached {
			continue
		}
		rep.Checked++
		v, ok := m.storm.MemberState(ms.id)
		if !ok {
			continue
		}
		net := m.storm.RegionNet(v.Region)
		if net == nil {
			continue
		}
		var bad []overlay.LinkRef
		stale := 0.0
		for _, r := range v.Held {
			if !net.Usable(r.From, r.To) {
				bad = append(bad, overlay.LinkRef{From: r.From, To: r.To})
				stale += r.Kbps
			}
		}
		if len(bad) == 0 {
			continue
		}
		if err := m.storm.NotePending(v.Region, bad); err != nil {
			continue
		}
		rep.Recomposed++
		rep.ReleasedKbps += stale
		rep.Sessions = append(rep.Sessions, ms.id)
		m.cfg.Counters.Inc(metrics.CounterRecoveryReconciled)
		if stale > 0 {
			m.cfg.Counters.Observe(metrics.SampleRecoveryReleasedKbps, stale)
		}
	}
	if _, err := m.storm.Storm(); err != nil && !errors.Is(err, storm.ErrStormActive) {
		m.mu.Lock()
		m.replayError(fmt.Sprintf("storm reconcile: %v", err))
		m.mu.Unlock()
	}
	if resumed != nil {
		rep.Recomposed += resumed.Replanned
	}
	sort.Strings(rep.Sessions)
	m.mu.Lock()
	m.recovery.Reconcile = rep
	m.mu.Unlock()
	return rep
}
