package transcode

import (
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func sourceFrames(t *testing.T, n int, fps float64) []Frame {
	t.Helper()
	src := Source{
		Format: media.VideoMPEG1,
		Params: media.Params{media.ParamFrameRate: fps},
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	return src.Frames(n)
}

func TestSourceFrames(t *testing.T) {
	frames := sourceFrames(t, 30, 30)
	if len(frames) != 30 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0].PTS != 0 || frames[29].PTS <= frames[1].PTS {
		t.Error("PTS must advance")
	}
	if !frames[0].Keyframe || frames[1].Keyframe || !frames[10].Keyframe {
		t.Error("GOP-10 keyframe pattern broken")
	}
	// Payload sized by the default model: 3000 kbps at 30 fps = 100
	// kbit/frame = 12500 bytes.
	if got := frames[0].Bytes(); got != 12500 {
		t.Errorf("payload = %d bytes, want 12500", got)
	}
	if frames[0].Payload[0] == frames[1].Payload[0] {
		t.Error("payload patterns should differ per frame")
	}
}

func TestSourceValidate(t *testing.T) {
	bad := Source{Format: media.Format{}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid format should fail")
	}
	neg := Source{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative fps should fail")
	}
}

func TestStagePassThrough(t *testing.T) {
	svc := service.FormatConverter("c1", media.VideoMPEG1, media.VideoH263)
	st, err := NewStage(svc, media.VideoH263, media.Params{media.ParamFrameRate: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := sourceFrames(t, 10, 30)
	total := 0
	for _, f := range frames {
		out := st.Process(f)
		total += len(out)
		for _, of := range out {
			if of.Format != media.VideoH263 {
				t.Fatalf("output format = %s", of.Format)
			}
			if of.Params.Get(media.ParamFrameRate) != 30 {
				t.Fatalf("output fps = %v", of.Params.Get(media.ParamFrameRate))
			}
		}
	}
	if total != 10 {
		t.Errorf("converter should pass all frames, emitted %d", total)
	}
	consumed, emitted, dropped := st.Counters()
	if consumed != 10 || emitted != 10 || dropped != 0 {
		t.Errorf("counters = %d/%d/%d", consumed, emitted, dropped)
	}
}

func TestStageFrameRateDecimation(t *testing.T) {
	svc := service.FrameRateReducer("r1", media.VideoMPEG1, 15)
	st, err := NewStage(svc, svc.Outputs[0], media.Params{media.ParamFrameRate: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := sourceFrames(t, 300, 30)
	emitted := 0
	for _, f := range frames {
		emitted += len(st.Process(f))
	}
	// 15/30 = half the frames, ±1 for accumulator boundary.
	if emitted < 149 || emitted > 151 {
		t.Errorf("emitted = %d of 300, want ~150", emitted)
	}
}

func TestStageDecimationEvenSpread(t *testing.T) {
	svc := service.FrameRateReducer("r1", media.VideoMPEG1, 10)
	st, err := NewStage(svc, svc.Outputs[0], media.Params{media.ParamFrameRate: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := sourceFrames(t, 90, 30)
	var keptSeqs []int
	for _, f := range frames {
		if out := st.Process(f); len(out) > 0 {
			keptSeqs = append(keptSeqs, f.Seq)
		}
	}
	if len(keptSeqs) != 30 {
		t.Fatalf("kept %d of 90, want 30", len(keptSeqs))
	}
	// Gaps should be uniform (every 3rd frame).
	for i := 1; i < len(keptSeqs); i++ {
		if gap := keptSeqs[i] - keptSeqs[i-1]; gap != 3 {
			t.Fatalf("uneven decimation gap %d at %d", gap, i)
		}
	}
}

func TestStageShrinksPayload(t *testing.T) {
	svc := service.FrameRateReducer("r1", media.VideoMPEG1, 15)
	st, err := NewStage(svc, svc.Outputs[0], media.Params{media.ParamFrameRate: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sourceFrames(t, 1, 30)[0]
	out := st.Process(in)
	if len(out) != 1 {
		t.Fatal("first frame should pass")
	}
	// Output: 15 fps → default model 1500 kbps / 15 fps = 100 kbit =
	// 12500 bytes (same per-frame size; bitrate halves via frame count).
	if out[0].Bytes() != 12500 {
		t.Errorf("payload = %d", out[0].Bytes())
	}
	if &out[0].Payload[0] == &in.Payload[0] {
		t.Error("payload must be rewritten, not aliased")
	}
}

func TestStageRejectsWrongTargets(t *testing.T) {
	svc := service.FrameRateReducer("r1", media.VideoMPEG1, 15)
	if _, err := NewStage(svc, media.VideoH263, media.Params{}, nil); err == nil {
		t.Error("unadvertised output format must be rejected")
	}
	if _, err := NewStage(svc, svc.Outputs[0], media.Params{media.ParamFrameRate: 20}, nil); err == nil {
		t.Error("target above the cap must be rejected")
	}
	if _, err := NewStage(nil, media.VideoH263, nil, nil); err == nil {
		t.Error("nil service must be rejected")
	}
}

func TestStageDropsWrongInputFormat(t *testing.T) {
	svc := service.FormatConverter("c1", media.VideoMPEG1, media.VideoH263)
	st, err := NewStage(svc, media.VideoH263, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	alien := Frame{Format: media.AudioMP3, Params: media.Params{media.ParamFrameRate: 1}, Payload: []byte{1}}
	if out := st.Process(alien); len(out) != 0 {
		t.Error("wrong-format frame must be dropped")
	}
	_, _, dropped := st.Counters()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestKeyframeStage(t *testing.T) {
	svc := service.KeyframeExtractor("k1", media.VideoMPEG1)
	st, err := NewKeyframeStage(svc, media.VideoKeyframes, media.Params{media.ParamFrameRate: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := sourceFrames(t, 100, 30) // keyframe every 10 → 10 keyframes
	emitted := 0
	for _, f := range frames {
		out := st.Process(f)
		emitted += len(out)
		for _, of := range out {
			if of.Format != media.VideoKeyframes {
				t.Fatalf("keyframe output format = %s", of.Format)
			}
		}
	}
	if emitted == 0 || emitted > 10 {
		t.Errorf("keyframe stage emitted %d of 100, want <=10 and >0", emitted)
	}
}

func TestPayloadSizeFloor(t *testing.T) {
	if payloadSize(nil, media.Params{}) < 1 {
		t.Error("payload size must be at least 1 byte")
	}
}
