// Package transcode provides executable counterparts to the service
// descriptions of internal/service: stages that actually consume and
// produce synthetic media frames. Together with internal/pipeline it
// substitutes for the real media transcoders the paper assumes — the
// framework only depends on format signatures and quality transfer, both
// of which these synthetic stages implement faithfully.
package transcode

import (
	"fmt"
	"math"

	"qoschain/internal/media"
)

// Frame is one synthetic media unit flowing through an adaptation chain.
type Frame struct {
	// Seq is the source sequence number (0-based).
	Seq int
	// PTS is the presentation timestamp in seconds of virtual time.
	PTS float64
	// Format is the frame's current format signature.
	Format media.Format
	// Params are the QoS parameters the frame is encoded at.
	Params media.Params
	// Payload is the synthetic encoded payload; its size tracks the
	// bitrate implied by Params.
	Payload []byte
	// Keyframe marks intra-coded frames (every GOP-th frame).
	Keyframe bool
}

// Bytes returns the payload size.
func (f Frame) Bytes() int { return len(f.Payload) }

// payloadSize derives the per-frame payload in bytes from a bitrate
// model: kbps / fps → kbit per frame → bytes.
func payloadSize(model media.BitrateModel, p media.Params) int {
	if model == nil {
		model = media.DefaultBitrate
	}
	fps := p.Get(media.ParamFrameRate)
	if fps <= 0 {
		fps = 1
	}
	kbit := model.RequiredKbps(p) / fps
	n := int(math.Ceil(kbit * 1000 / 8))
	if n < 1 {
		n = 1
	}
	return n
}

// Source generates a deterministic synthetic stream.
type Source struct {
	// Format and Params describe the generated variant.
	Format media.Format
	Params media.Params
	// Bitrate sizes payloads; nil uses media.DefaultBitrate.
	Bitrate media.BitrateModel
	// GOP is the keyframe interval (default 10).
	GOP int
}

// Frames produces n frames with PTS spaced at 1/fps seconds.
func (s Source) Frames(n int) []Frame {
	gop := s.GOP
	if gop <= 0 {
		gop = 10
	}
	fps := s.Params.Get(media.ParamFrameRate)
	if fps <= 0 {
		fps = 1
	}
	size := payloadSize(s.Bitrate, s.Params)
	out := make([]Frame, n)
	for i := 0; i < n; i++ {
		payload := make([]byte, size)
		// A recognizable deterministic pattern (frame index signature)
		// lets tests verify payloads are rewritten, not aliased.
		for j := range payload {
			payload[j] = byte((i + j) % 251)
		}
		out[i] = Frame{
			Seq:      i,
			PTS:      float64(i) / fps,
			Format:   s.Format,
			Params:   s.Params.Clone(),
			Payload:  payload,
			Keyframe: i%gop == 0,
		}
	}
	return out
}

// Validate checks the source configuration.
func (s Source) Validate() error {
	if err := s.Format.Validate(); err != nil {
		return err
	}
	if s.Params.Get(media.ParamFrameRate) < 0 {
		return fmt.Errorf("transcode: negative frame rate")
	}
	return nil
}
