// Package transcode provides executable counterparts to the service
// descriptions of internal/service: stages that actually consume and
// produce synthetic media frames. Together with internal/pipeline it
// substitutes for the real media transcoders the paper assumes — the
// framework only depends on format signatures and quality transfer, both
// of which these synthetic stages implement faithfully.
package transcode

import (
	"fmt"
	"math"

	"qoschain/internal/media"
)

// Frame is one synthetic media unit flowing through an adaptation chain.
type Frame struct {
	// Seq is the source sequence number (0-based).
	Seq int
	// PTS is the presentation timestamp in seconds of virtual time.
	PTS float64
	// Format is the frame's current format signature.
	Format media.Format
	// Params are the QoS parameters the frame is encoded at.
	Params media.Params
	// Payload is the synthetic encoded payload; its size tracks the
	// bitrate implied by Params.
	Payload []byte
	// Keyframe marks intra-coded frames (every GOP-th frame).
	Keyframe bool
}

// Bytes returns the payload size.
func (f Frame) Bytes() int { return len(f.Payload) }

// payloadSize derives the per-frame payload in bytes from a bitrate
// model: kbps / fps → kbit per frame → bytes.
func payloadSize(model media.BitrateModel, p media.Params) int {
	if model == nil {
		model = media.DefaultBitrate
	}
	fps := p.Get(media.ParamFrameRate)
	if fps <= 0 {
		fps = 1
	}
	kbit := model.RequiredKbps(p) / fps
	n := int(math.Ceil(kbit * 1000 / 8))
	if n < 1 {
		n = 1
	}
	return n
}

// Source generates a deterministic synthetic stream.
type Source struct {
	// Format and Params describe the generated variant.
	Format media.Format
	Params media.Params
	// Bitrate sizes payloads; nil uses media.DefaultBitrate.
	Bitrate media.BitrateModel
	// GOP is the keyframe interval (default 10).
	GOP int
}

// Frames produces n frames with PTS spaced at 1/fps seconds. It
// materializes the whole stream at once — O(n·payload) memory — and is
// kept as a thin wrapper over Cursor for tests and small direct runs;
// the pipeline streams through a Cursor instead.
func (s Source) Frames(n int) []Frame {
	out := s.Cursor(n, nil).Next(make([]Frame, 0, n))
	// Preserve the historical contract: every materialized frame owns a
	// private Params map (cursor-emitted frames share the source's).
	for i := range out {
		out[i].Params = out[i].Params.Clone()
	}
	return out
}

// Cursor generates a Source's stream lazily, batch by batch, so an
// n-frame run holds O(batch) rather than O(n) payload memory. Frames
// are identical to Source.Frames output — same deterministic payload
// pattern, PTS spacing and keyframe cadence — except that every frame
// shares the source's Params map read-only instead of owning a clone.
type Cursor struct {
	format  media.Format
	params  media.Params
	fps     float64
	gop     int
	size    int
	n, next int
	pool    *PayloadPool
}

// Cursor returns a lazy generator for the first n frames, drawing
// payload buffers from pool (nil allocates plainly).
func (s Source) Cursor(n int, pool *PayloadPool) *Cursor {
	gop := s.GOP
	if gop <= 0 {
		gop = 10
	}
	fps := s.Params.Get(media.ParamFrameRate)
	if fps <= 0 {
		fps = 1
	}
	return &Cursor{
		format: s.Format,
		params: s.Params,
		fps:    fps,
		gop:    gop,
		size:   payloadSize(s.Bitrate, s.Params),
		n:      n,
		pool:   pool,
	}
}

// patternPeriod is the modulus of the deterministic payload pattern
// byte((i+j) % patternPeriod). Prime, so the pattern never aligns with
// frame or GOP boundaries.
const patternPeriod = 251

// patternTable holds two full periods of the payload pattern, so any
// phase-shifted period can be block-copied out of it.
var patternTable = func() []byte {
	t := make([]byte, 2*patternPeriod)
	for j := range t {
		t[j] = byte(j % patternPeriod)
	}
	return t
}()

// fillPattern writes payload[j] = byte((off+j) % patternPeriod) using
// block copies instead of a byte-wise modulo loop — the fill is the
// data plane's single largest per-frame cost, so it runs at memcpy
// speed: one phase-shifted period from the table, then doubling.
func fillPattern(payload []byte, off int) {
	off %= patternPeriod
	n := copy(payload, patternTable[off:])
	if n >= len(payload) {
		return
	}
	// Doubling requires the copied prefix to be whole periods.
	n -= n % patternPeriod
	for n < len(payload) {
		n += copy(payload[n:], payload[:n])
	}
}

// Next appends up to cap(dst)-len(dst) frames to dst and returns it.
// An unchanged length signals the stream is exhausted.
func (c *Cursor) Next(dst []Frame) []Frame {
	for len(dst) < cap(dst) && c.next < c.n {
		i := c.next
		payload := c.pool.Get(c.size)
		// A recognizable deterministic pattern (frame index signature)
		// lets tests verify payloads are rewritten, not aliased.
		fillPattern(payload, i)
		dst = append(dst, Frame{
			Seq:      i,
			PTS:      float64(i) / c.fps,
			Format:   c.format,
			Params:   c.params,
			Payload:  payload,
			Keyframe: i%c.gop == 0,
		})
		c.next++
	}
	return dst
}

// Remaining reports how many frames the cursor has yet to emit.
func (c *Cursor) Remaining() int { return c.n - c.next }

// Validate checks the source configuration.
func (s Source) Validate() error {
	if err := s.Format.Validate(); err != nil {
		return err
	}
	if s.Params.Get(media.ParamFrameRate) < 0 {
		return fmt.Errorf("transcode: negative frame rate")
	}
	return nil
}
