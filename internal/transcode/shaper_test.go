package transcode

import (
	"testing"

	"qoschain/internal/media"
)

func TestShaperDecimates(t *testing.T) {
	s := NewShaper(media.Params{media.ParamFrameRate: 15}, nil)
	frames := sourceFrames(t, 300, 30)
	emitted := 0
	for _, f := range frames {
		out := s.Process(f)
		emitted += len(out)
		for _, of := range out {
			if of.Format != f.Format {
				t.Fatal("shaper must not change the format")
			}
			if of.Params.Get(media.ParamFrameRate) != 15 {
				t.Fatalf("shaped fps = %v", of.Params.Get(media.ParamFrameRate))
			}
		}
	}
	if emitted < 149 || emitted > 151 {
		t.Errorf("emitted %d of 300, want ~150", emitted)
	}
	consumed, em, dropped := s.Counters()
	if consumed != 300 || em != emitted || consumed != em+dropped {
		t.Errorf("counters leak: %d/%d/%d", consumed, em, dropped)
	}
}

func TestShaperPassThroughWhenTargetHigher(t *testing.T) {
	s := NewShaper(media.Params{media.ParamFrameRate: 60}, nil)
	frames := sourceFrames(t, 50, 30)
	emitted := 0
	for _, f := range frames {
		out := s.Process(f)
		emitted += len(out)
		if len(out) == 1 && out[0].Params.Get(media.ParamFrameRate) != 30 {
			t.Fatal("shaper must never raise quality")
		}
	}
	if emitted != 50 {
		t.Errorf("emitted = %d, want all 50", emitted)
	}
}

func TestShaperFirstFrameEmits(t *testing.T) {
	s := NewShaper(media.Params{media.ParamFrameRate: 10}, nil)
	first := sourceFrames(t, 1, 30)[0]
	if out := s.Process(first); len(out) != 1 {
		t.Error("the first frame must pass so the stream starts immediately")
	}
}

func TestShaperResizesPayload(t *testing.T) {
	s := NewShaper(media.Params{media.ParamFrameRate: 15}, nil)
	in := sourceFrames(t, 1, 30)[0]
	out := s.Process(in)
	if len(out) != 1 {
		t.Fatal("first frame should pass")
	}
	if &out[0].Payload[0] == &in.Payload[0] {
		t.Error("shaper must rewrite, not alias, the payload")
	}
	// 15 fps at 100 kbps/fps → 1500 kbps / 15 fps = 12500 bytes/frame.
	if out[0].Bytes() != 12500 {
		t.Errorf("payload = %d bytes", out[0].Bytes())
	}
}
