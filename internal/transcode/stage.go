package transcode

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Stage is an executable trans-coding stage: the runtime realization of
// one service.Service vertex on a selected chain. It rewrites frame
// formats, applies the service's quality transfer (capping parameters at
// the negotiated targets) and thins the frame stream when the target
// frame rate is below the input rate.
type Stage struct {
	svc    *service.Service
	out    media.Format
	target media.Params
	model  media.BitrateModel
	pool   *PayloadPool

	// frame-rate decimation state: classic accumulator thinning. The
	// accumulator is primed on the first frame so the stream starts
	// immediately and stays evenly spaced.
	credit float64
	primed bool

	// Negotiated-output cache: every frame of one stream carries the
	// same parameters, so the per-frame Min (a map allocation) and
	// bitrate-model evaluation are computed once and reused until the
	// input assignment actually changes. Emitted frames share cachedOut
	// read-only — the pipeline's ownership rules (DESIGN §12) forbid
	// mutating a frame's Params in flight.
	cachedIn   media.Params
	cachedOut  media.Params
	cachedSize int

	// counters
	consumed int
	emitted  int
	dropped  int
}

// NewStage builds a stage for svc emitting outFormat at the negotiated
// target parameters (from the selection result). outFormat must be one of
// the service's advertised outputs, and targets must not exceed the
// service's caps.
func NewStage(svc *service.Service, outFormat media.Format, target media.Params, model media.BitrateModel) (*Stage, error) {
	if svc == nil {
		return nil, fmt.Errorf("transcode: nil service")
	}
	if !svc.Produces(outFormat) {
		return nil, fmt.Errorf("transcode: service %s does not produce %s", svc.ID, outFormat)
	}
	applied := target.Min(svc.Caps)
	if !applied.Equal(target, 1e-9) {
		return nil, fmt.Errorf("transcode: target %s exceeds caps of service %s", target, svc.ID)
	}
	return &Stage{svc: svc, out: outFormat, target: target.Clone(), model: model}, nil
}

// UsePool attaches a payload pool: output buffers come from it, consumed
// input buffers return to it, and a re-encode that would reproduce the
// input byte-for-byte (same payload size) passes the buffer through
// zero-copy. Only attach a pool when the caller owns every frame handed
// to Process — the pipeline does; direct users normally should not.
func (s *Stage) UsePool(p *PayloadPool) { s.pool = p }

// outputFor returns the negotiated output parameters and payload size
// for frames carrying in, recomputing only when the input changes.
func (s *Stage) outputFor(in media.Params) (media.Params, int) {
	if s.cachedOut == nil || !in.Equal(s.cachedIn, 0) {
		s.cachedIn = in
		s.cachedOut = in.Min(s.target)
		s.cachedSize = payloadSize(s.model, s.cachedOut)
	}
	return s.cachedOut, s.cachedSize
}

// recycle returns a dead payload to the pool, if one is attached.
func (s *Stage) recycle(b []byte) {
	if s.pool != nil {
		s.pool.Put(b)
	}
}

// rewrite re-encodes src into a payload of the given size. With a pool
// attached and an unchanged size the rewrite would copy src verbatim,
// so the buffer is handed through zero-copy instead; otherwise a fresh
// buffer is filled and src is recycled.
func (s *Stage) rewrite(src []byte, size int) []byte {
	if s.pool != nil && size == len(src) {
		return src
	}
	dst := s.pool.Get(size)
	n := copy(dst, src)
	fillPattern(dst[n:], n)
	s.recycle(src)
	return dst
}

// Process consumes one frame and returns the trans-coded output frames
// (zero when the frame is decimated away by frame-rate reduction).
func (s *Stage) Process(f Frame) []Frame {
	out := s.ProcessAppend(f, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ProcessAppend trans-codes one frame, appending any output to out and
// returning it. It is the allocation-free form the batched pipeline
// drives: out is a reused batch buffer, and with a pool attached the
// payload traffic recycles instead of allocating.
func (s *Stage) ProcessAppend(f Frame, out []Frame) []Frame {
	s.consumed++
	if !s.svc.Accepts(f.Format) {
		// A mis-wired chain: drop rather than corrupt.
		s.dropped++
		s.recycle(f.Payload)
		return out
	}
	inFPS := f.Params.Get(media.ParamFrameRate)
	outFPS := s.target.Get(media.ParamFrameRate)
	if outFPS > 0 && inFPS > outFPS {
		// Accumulator decimation: forward outFPS out of every inFPS
		// frames, evenly spread, starting with the first frame.
		ratio := outFPS / inFPS
		if !s.primed {
			s.credit = 1 - ratio
			s.primed = true
		}
		s.credit += ratio
		if s.credit < 1 {
			s.dropped++
			s.recycle(f.Payload)
			return out
		}
		s.credit--
	}

	outParams, size := s.outputFor(f.Params)
	payload := s.rewrite(f.Payload, size)
	s.emitted++
	return append(out, Frame{
		Seq:      f.Seq,
		PTS:      f.PTS,
		Format:   s.out,
		Params:   outParams,
		Payload:  payload,
		Keyframe: f.Keyframe,
	})
}

// Service returns the stage's service description.
func (s *Stage) Service() *service.Service { return s.svc }

// OutputFormat returns the format the stage emits.
func (s *Stage) OutputFormat() media.Format { return s.out }

// Counters reports consumed/emitted/dropped frame counts.
func (s *Stage) Counters() (consumed, emitted, dropped int) {
	return s.consumed, s.emitted, s.dropped
}

// KeyframeStage is a specialization for video→keyframe extraction: only
// intra frames survive.
type KeyframeStage struct {
	Stage
}

// NewKeyframeStage wraps svc (typically service.KeyframeExtractor).
func NewKeyframeStage(svc *service.Service, outFormat media.Format, target media.Params, model media.BitrateModel) (*KeyframeStage, error) {
	st, err := NewStage(svc, outFormat, target, model)
	if err != nil {
		return nil, err
	}
	return &KeyframeStage{Stage: *st}, nil
}

// Process forwards only keyframes, then applies the base trans-coding.
func (k *KeyframeStage) Process(f Frame) []Frame {
	out := k.ProcessAppend(f, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ProcessAppend forwards only keyframes, then applies the base
// trans-coding.
func (k *KeyframeStage) ProcessAppend(f Frame, out []Frame) []Frame {
	if !f.Keyframe {
		k.consumed++
		k.dropped++
		k.recycle(f.Payload)
		return out
	}
	return k.Stage.ProcessAppend(f, out)
}
