package transcode

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Stage is an executable trans-coding stage: the runtime realization of
// one service.Service vertex on a selected chain. It rewrites frame
// formats, applies the service's quality transfer (capping parameters at
// the negotiated targets) and thins the frame stream when the target
// frame rate is below the input rate.
type Stage struct {
	svc    *service.Service
	out    media.Format
	target media.Params
	model  media.BitrateModel

	// frame-rate decimation state: classic accumulator thinning. The
	// accumulator is primed on the first frame so the stream starts
	// immediately and stays evenly spaced.
	credit float64
	primed bool

	// counters
	consumed int
	emitted  int
	dropped  int
}

// NewStage builds a stage for svc emitting outFormat at the negotiated
// target parameters (from the selection result). outFormat must be one of
// the service's advertised outputs, and targets must not exceed the
// service's caps.
func NewStage(svc *service.Service, outFormat media.Format, target media.Params, model media.BitrateModel) (*Stage, error) {
	if svc == nil {
		return nil, fmt.Errorf("transcode: nil service")
	}
	if !svc.Produces(outFormat) {
		return nil, fmt.Errorf("transcode: service %s does not produce %s", svc.ID, outFormat)
	}
	applied := target.Min(svc.Caps)
	if !applied.Equal(target, 1e-9) {
		return nil, fmt.Errorf("transcode: target %s exceeds caps of service %s", target, svc.ID)
	}
	return &Stage{svc: svc, out: outFormat, target: target.Clone(), model: model}, nil
}

// Process consumes one frame and returns the trans-coded output frames
// (zero when the frame is decimated away by frame-rate reduction).
func (s *Stage) Process(f Frame) []Frame {
	s.consumed++
	if !s.svc.Accepts(f.Format) {
		// A mis-wired chain: drop rather than corrupt.
		s.dropped++
		return nil
	}
	inFPS := f.Params.Get(media.ParamFrameRate)
	outFPS := s.target.Get(media.ParamFrameRate)
	if outFPS > 0 && inFPS > outFPS {
		// Accumulator decimation: forward outFPS out of every inFPS
		// frames, evenly spread, starting with the first frame.
		ratio := outFPS / inFPS
		if !s.primed {
			s.credit = 1 - ratio
			s.primed = true
		}
		s.credit += ratio
		if s.credit < 1 {
			s.dropped++
			return nil
		}
		s.credit--
	}

	outParams := f.Params.Min(s.target)
	payload := make([]byte, payloadSize(s.model, outParams))
	n := copy(payload, f.Payload)
	for i := n; i < len(payload); i++ {
		payload[i] = byte(i % 251)
	}
	s.emitted++
	return []Frame{{
		Seq:      f.Seq,
		PTS:      f.PTS,
		Format:   s.out,
		Params:   outParams,
		Payload:  payload,
		Keyframe: f.Keyframe,
	}}
}

// Service returns the stage's service description.
func (s *Stage) Service() *service.Service { return s.svc }

// OutputFormat returns the format the stage emits.
func (s *Stage) OutputFormat() media.Format { return s.out }

// Counters reports consumed/emitted/dropped frame counts.
func (s *Stage) Counters() (consumed, emitted, dropped int) {
	return s.consumed, s.emitted, s.dropped
}

// KeyframeStage is a specialization for video→keyframe extraction: only
// intra frames survive.
type KeyframeStage struct {
	Stage
}

// NewKeyframeStage wraps svc (typically service.KeyframeExtractor).
func NewKeyframeStage(svc *service.Service, outFormat media.Format, target media.Params, model media.BitrateModel) (*KeyframeStage, error) {
	st, err := NewStage(svc, outFormat, target, model)
	if err != nil {
		return nil, err
	}
	return &KeyframeStage{Stage: *st}, nil
}

// Process forwards only keyframes, then applies the base trans-coding.
func (k *KeyframeStage) Process(f Frame) []Frame {
	if !f.Keyframe {
		k.consumed++
		k.dropped++
		return nil
	}
	return k.Stage.Process(f)
}
