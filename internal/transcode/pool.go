package transcode

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Payload pool size classes: powers of two from 64 B to 16 MiB. A
// request above the largest class falls back to a plain allocation.
const (
	poolMinClass = 6  // 64 B
	poolMaxClass = 24 // 16 MiB
	// poolClassCap bounds how many idle buffers one size class retains,
	// so the pool's memory stays proportional to the live working set
	// rather than the historical peak.
	poolClassCap = 4096
)

// PayloadPool recycles frame payload buffers between pipeline stages.
// It is the allocation-discipline half of the batched executor: a stage
// that re-encodes a frame takes its output buffer from the pool and
// returns the input buffer, and the pipeline sink returns delivered
// payloads, so a steady-state stream allocates nothing per frame.
//
// Buffers are bucketed into power-of-two size classes behind per-class
// locks. Get returns a buffer of exactly the requested length whose
// contents are UNDEFINED — callers must overwrite every byte (every
// producer in this package does). A nil *PayloadPool is valid and
// degrades to plain make/garbage-collection, which keeps pooling an
// opt-in property of the pipeline rather than of the stage types.
type PayloadPool struct {
	classes [poolMaxClass + 1]payloadClass

	// misses counts Gets that had to allocate, which tests use to prove
	// the steady state recycles instead of allocating.
	misses atomic.Int64

	// outstanding counts pool-eligible buffers currently checked out:
	// +1 per Get, -1 per Put. Leak audits assert it returns to zero
	// after a run — valid only under the ownership discipline this
	// package follows (every Get-ed buffer is eventually Put exactly
	// once, and nothing else is Put).
	outstanding atomic.Int64
}

type payloadClass struct {
	mu   sync.Mutex
	bufs [][]byte
}

// NewPayloadPool returns an empty pool.
func NewPayloadPool() *PayloadPool { return &PayloadPool{} }

// sizeClass returns the class whose buffers can hold n bytes.
func sizeClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < poolMinClass {
		c = poolMinClass
	}
	return c
}

// Get returns a buffer of length n with undefined contents. The caller
// owns it until handed to another stage or returned with Put.
func (p *PayloadPool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]byte, n)
	}
	c := sizeClass(n)
	if c > poolMaxClass {
		return make([]byte, n)
	}
	p.outstanding.Add(1)
	cl := &p.classes[c]
	cl.mu.Lock()
	if last := len(cl.bufs) - 1; last >= 0 {
		b := cl.bufs[last]
		cl.bufs[last] = nil
		cl.bufs = cl.bufs[:last]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	p.misses.Add(1)
	return make([]byte, n, 1<<c)
}

// Put returns a buffer to the pool. The caller must not touch b again.
// Buffers the pool did not produce are accepted too (they join the
// class their capacity floors into); undersized or oversized ones are
// dropped to the garbage collector.
func (p *PayloadPool) Put(b []byte) {
	if p == nil || cap(b) < 1<<poolMinClass {
		return
	}
	// Floor, not round: a class-c shelf promises cap >= 1<<c.
	c := bits.Len(uint(cap(b))) - 1
	if c > poolMaxClass {
		return
	}
	// A full shelf still counts as returned — the buffer left the
	// caller's ownership either way.
	p.outstanding.Add(-1)
	cl := &p.classes[c]
	cl.mu.Lock()
	if len(cl.bufs) < poolClassCap {
		cl.bufs = append(cl.bufs, b[:cap(b)])
	}
	cl.mu.Unlock()
}

// Misses reports how many Gets allocated because no recycled buffer was
// available.
func (p *PayloadPool) Misses() int64 {
	if p == nil {
		return 0
	}
	return p.misses.Load()
}

// Outstanding reports how many pool-eligible buffers are checked out
// (Get minus Put). Zero after a pipeline run means no payload buffer
// leaked on a failure or cancellation path.
func (p *PayloadPool) Outstanding() int64 {
	if p == nil {
		return 0
	}
	return p.outstanding.Load()
}
