package transcode

import "qoschain/internal/media"

// Shaper is the sender-side rate adaptation: it decimates and re-sizes
// frames down to the negotiated QoS parameters without changing the
// format. The paper's model has every edge carry the stream at the
// parameters the optimizer chose for it; the shaper realizes that choice
// at the head of the chain so downstream links are never oversubscribed.
type Shaper struct {
	target media.Params
	model  media.BitrateModel
	pool   *PayloadPool

	credit float64
	primed bool

	// Negotiated-output cache; see Stage for the rationale and the
	// ownership rule emitted frames live under.
	cachedIn   media.Params
	cachedOut  media.Params
	cachedSize int

	consumed int
	emitted  int
	dropped  int
}

// NewShaper builds a shaper emitting at the target parameters.
func NewShaper(target media.Params, model media.BitrateModel) *Shaper {
	return &Shaper{target: target.Clone(), model: model}
}

// UsePool attaches a payload pool; see Stage.UsePool for the ownership
// contract.
func (s *Shaper) UsePool(p *PayloadPool) { s.pool = p }

func (s *Shaper) outputFor(in media.Params) (media.Params, int) {
	if s.cachedOut == nil || !in.Equal(s.cachedIn, 0) {
		s.cachedIn = in
		s.cachedOut = in.Min(s.target)
		s.cachedSize = payloadSize(s.model, s.cachedOut)
	}
	return s.cachedOut, s.cachedSize
}

func (s *Shaper) recycle(b []byte) {
	if s.pool != nil {
		s.pool.Put(b)
	}
}

func (s *Shaper) rewrite(src []byte, size int) []byte {
	if s.pool != nil && size == len(src) {
		return src
	}
	dst := s.pool.Get(size)
	n := copy(dst, src)
	fillPattern(dst[n:], n)
	s.recycle(src)
	return dst
}

// Process decimates the stream to the target frame rate and re-sizes the
// payload to the target bitrate.
func (s *Shaper) Process(f Frame) []Frame {
	out := s.ProcessAppend(f, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ProcessAppend shapes one frame, appending any output to out and
// returning it — the allocation-free form the batched pipeline drives.
func (s *Shaper) ProcessAppend(f Frame, out []Frame) []Frame {
	s.consumed++
	inFPS := f.Params.Get(media.ParamFrameRate)
	outFPS := s.target.Get(media.ParamFrameRate)
	if outFPS > 0 && inFPS > outFPS {
		ratio := outFPS / inFPS
		if !s.primed {
			s.credit = 1 - ratio
			s.primed = true
		}
		s.credit += ratio
		if s.credit < 1 {
			s.dropped++
			s.recycle(f.Payload)
			return out
		}
		s.credit--
	}
	outParams, size := s.outputFor(f.Params)
	payload := s.rewrite(f.Payload, size)
	s.emitted++
	return append(out, Frame{
		Seq:      f.Seq,
		PTS:      f.PTS,
		Format:   f.Format,
		Params:   outParams,
		Payload:  payload,
		Keyframe: f.Keyframe,
	})
}

// Counters reports consumed/emitted/dropped frame counts.
func (s *Shaper) Counters() (consumed, emitted, dropped int) {
	return s.consumed, s.emitted, s.dropped
}
