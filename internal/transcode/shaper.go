package transcode

import "qoschain/internal/media"

// Shaper is the sender-side rate adaptation: it decimates and re-sizes
// frames down to the negotiated QoS parameters without changing the
// format. The paper's model has every edge carry the stream at the
// parameters the optimizer chose for it; the shaper realizes that choice
// at the head of the chain so downstream links are never oversubscribed.
type Shaper struct {
	target media.Params
	model  media.BitrateModel

	credit float64
	primed bool

	consumed int
	emitted  int
	dropped  int
}

// NewShaper builds a shaper emitting at the target parameters.
func NewShaper(target media.Params, model media.BitrateModel) *Shaper {
	return &Shaper{target: target.Clone(), model: model}
}

// Process decimates the stream to the target frame rate and re-sizes the
// payload to the target bitrate.
func (s *Shaper) Process(f Frame) []Frame {
	s.consumed++
	inFPS := f.Params.Get(media.ParamFrameRate)
	outFPS := s.target.Get(media.ParamFrameRate)
	if outFPS > 0 && inFPS > outFPS {
		ratio := outFPS / inFPS
		if !s.primed {
			s.credit = 1 - ratio
			s.primed = true
		}
		s.credit += ratio
		if s.credit < 1 {
			s.dropped++
			return nil
		}
		s.credit--
	}
	outParams := f.Params.Min(s.target)
	payload := make([]byte, payloadSize(s.model, outParams))
	n := copy(payload, f.Payload)
	for i := n; i < len(payload); i++ {
		payload[i] = byte(i % 251)
	}
	s.emitted++
	return []Frame{{
		Seq:      f.Seq,
		PTS:      f.PTS,
		Format:   f.Format,
		Params:   outParams,
		Payload:  payload,
		Keyframe: f.Keyframe,
	}}
}

// Counters reports consumed/emitted/dropped frame counts.
func (s *Shaper) Counters() (consumed, emitted, dropped int) {
	return s.consumed, s.emitted, s.dropped
}
