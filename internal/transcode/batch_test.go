package transcode

import (
	"bytes"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// TestCursorMatchesFrames: the lazy batch iterator must emit exactly the
// stream Frames materializes — same sequence numbers, timestamps,
// keyframe cadence, parameters and payload bytes — regardless of the
// batch size it is drained with.
func TestCursorMatchesFrames(t *testing.T) {
	src := Source{
		Format: media.VideoMPEG1,
		Params: media.Params{media.ParamFrameRate: 30},
		GOP:    7,
	}
	want := src.Frames(100)
	for _, batch := range []int{1, 3, 32, 100, 1000} {
		cur := src.Cursor(100, nil)
		var got []Frame
		for {
			b := cur.Next(make([]Frame, 0, batch))
			if len(b) == 0 {
				break
			}
			got = append(got, b...)
		}
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d frames, want %d", batch, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.Seq != w.Seq || g.PTS != w.PTS || g.Keyframe != w.Keyframe || g.Format != w.Format {
				t.Fatalf("batch %d frame %d: header %+v != %+v", batch, i, g, w)
			}
			if !bytes.Equal(g.Payload, w.Payload) {
				t.Fatalf("batch %d frame %d: payload differs", batch, i)
			}
			if !g.Params.Equal(w.Params, 0) {
				t.Fatalf("batch %d frame %d: params %v != %v", batch, i, g.Params, w.Params)
			}
		}
		if cur.Remaining() != 0 {
			t.Errorf("batch %d: Remaining = %d after drain", batch, cur.Remaining())
		}
	}
}

// TestCursorPoolRecycling: a cursor drawing from a pool must reuse
// returned buffers instead of allocating per batch.
func TestCursorPoolRecycling(t *testing.T) {
	src := Source{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}}
	pool := NewPayloadPool()
	cur := src.Cursor(300, pool)
	buf := make([]Frame, 0, 10)
	for {
		b := cur.Next(buf[:0])
		if len(b) == 0 {
			break
		}
		for _, f := range b {
			pool.Put(f.Payload)
		}
		buf = b
	}
	// First batch misses (cold pool); every later Get must hit.
	if m := pool.Misses(); m > 10 {
		t.Errorf("pool misses = %d over 300 frames; recycling is not happening", m)
	}
}

func TestPayloadPoolClasses(t *testing.T) {
	p := NewPayloadPool()
	b := p.Get(100) // class 7 → cap 128
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Get(100): len %d cap %d", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(120) // same class: must reuse
	if cap(b2) != 128 {
		t.Errorf("Get(120) after Put: cap %d, want recycled 128", cap(b2))
	}
	if p.Misses() != 1 {
		t.Errorf("misses = %d, want 1 (only the cold Get)", p.Misses())
	}
	// A smaller request must not get the big buffer back as undersized.
	p.Put(b2)
	small := p.Get(8) // class floor is 64 B
	if len(small) != 8 || cap(small) < 64 {
		t.Errorf("Get(8): len %d cap %d", len(small), cap(small))
	}
	// Foreign buffers with odd capacities floor into a class they can
	// actually serve.
	p.Put(make([]byte, 0, 200)) // floors to class 7 (128): cap 200 >= 128 ok
	got := p.Get(128)
	if cap(got) != 200 {
		t.Errorf("foreign buffer not recycled: cap %d", cap(got))
	}
}

func TestPayloadPoolNilSafe(t *testing.T) {
	var p *PayloadPool
	b := p.Get(64)
	if len(b) != 64 {
		t.Fatalf("nil pool Get(64) len = %d", len(b))
	}
	p.Put(b) // must not panic
	if p.Misses() != 0 {
		t.Error("nil pool reports misses")
	}
	if got := (*PayloadPool)(nil).Get(0); got != nil {
		t.Error("Get(0) should be nil")
	}
}

// TestProcessAppendMatchesProcess: the batch entry point must be
// behaviorally identical to the legacy per-frame Process, for both a
// stage and a shaper.
func TestProcessAppendMatchesProcess(t *testing.T) {
	mk := func() (*Stage, *Stage) {
		svc := service.FrameRateReducer("r1", media.VideoMPEG1, 10)
		target := media.Params{media.ParamFrameRate: 10}
		out := svc.Outputs[0]
		a, err := NewStage(svc, out, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewStage(svc, out, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	one, batch := mk()
	src := Source{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}}
	frames := src.Frames(60)

	var wantOut, gotOut []Frame
	for _, f := range frames {
		wantOut = append(wantOut, one.Process(f)...)
	}
	for _, f := range frames {
		gotOut = batch.ProcessAppend(f, gotOut)
	}
	if len(wantOut) != len(gotOut) {
		t.Fatalf("ProcessAppend emitted %d frames, Process %d", len(gotOut), len(wantOut))
	}
	for i := range wantOut {
		if wantOut[i].Seq != gotOut[i].Seq || !bytes.Equal(wantOut[i].Payload, gotOut[i].Payload) {
			t.Fatalf("frame %d differs", i)
		}
	}
	c1, e1, d1 := one.Counters()
	c2, e2, d2 := batch.Counters()
	if c1 != c2 || e1 != e2 || d1 != d2 {
		t.Errorf("counters diverge: %d/%d/%d vs %d/%d/%d", c1, e1, d1, c2, e2, d2)
	}
}

// TestPooledStageOutputIdentical: attaching a pool (recycled buffers,
// zero-copy rewrites) must not change a single emitted byte relative to
// the unpooled path.
func TestPooledStageOutputIdentical(t *testing.T) {
	svc := service.FormatConverter("c1", media.VideoMPEG1, media.VideoH263)
	target := media.Params{media.ParamFrameRate: 30}
	mk := func(pool *PayloadPool) []Frame {
		st, err := NewStage(svc, media.VideoH263, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.UsePool(pool)
		src := Source{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}}
		cur := src.Cursor(50, pool)
		var out []Frame
		buf := make([]Frame, 0, 8)
		for {
			b := cur.Next(buf[:0])
			if len(b) == 0 {
				break
			}
			for _, f := range b {
				out = st.ProcessAppend(f, out)
			}
			buf = b[:0]
		}
		return out
	}
	plain := mk(nil)
	pooled := mk(NewPayloadPool())
	if len(plain) != len(pooled) {
		t.Fatalf("pooled emitted %d frames, plain %d", len(pooled), len(plain))
	}
	for i := range plain {
		if !bytes.Equal(plain[i].Payload, pooled[i].Payload) {
			t.Fatalf("frame %d: pooled payload differs from plain", i)
		}
	}
}

// TestShaperProcessAppendMatchesProcess mirrors the stage check for the
// sender-side shaper.
func TestShaperProcessAppendMatchesProcess(t *testing.T) {
	target := media.Params{media.ParamFrameRate: 15}
	a := NewShaper(target, nil)
	b := NewShaper(target, nil)
	src := Source{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}}
	frames := src.Frames(40)
	var wantOut, gotOut []Frame
	for _, f := range frames {
		wantOut = append(wantOut, a.Process(f)...)
	}
	for _, f := range frames {
		gotOut = b.ProcessAppend(f, gotOut)
	}
	if len(wantOut) != len(gotOut) {
		t.Fatalf("shaper ProcessAppend emitted %d, Process %d", len(gotOut), len(wantOut))
	}
	for i := range wantOut {
		if !bytes.Equal(wantOut[i].Payload, gotOut[i].Payload) {
			t.Fatalf("frame %d differs", i)
		}
	}
}
