package admission

import (
	"testing"
	"time"

	"qoschain/internal/metrics"
)

func TestAllowBurstThenLimited(t *testing.T) {
	clock := NewVirtualClock(time.Time{})
	counters := metrics.NewCounters()
	rl := NewRateLimiter(RateConfig{Rate: 10, Burst: 3, Clock: clock, Metrics: counters})
	for i := 0; i < 3; i++ {
		if !rl.Allow("c") {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if rl.Allow("c") {
		t.Fatal("drained bucket must refuse")
	}
	if rl.Limited() != 1 || counters.Get(metrics.CounterAdmissionRateLimited) != 1 {
		t.Errorf("limited = %d, counter = %d", rl.Limited(), counters.Get(metrics.CounterAdmissionRateLimited))
	}
	// Other clients have their own buckets.
	if !rl.Allow("other") {
		t.Error("an unrelated client must not be limited")
	}
}

func TestRefillFromClockDeltas(t *testing.T) {
	clock := NewVirtualClock(time.Time{})
	rl := NewRateLimiter(RateConfig{Rate: 10, Burst: 2, Clock: clock})
	rl.Allow("c")
	rl.Allow("c")
	if rl.Allow("c") {
		t.Fatal("bucket should be empty")
	}
	clock.Advance(100 * time.Millisecond) // exactly one token at 10/s
	if !rl.Allow("c") {
		t.Fatal("one refilled token should admit")
	}
	if rl.Allow("c") {
		t.Fatal("only one token should have refilled")
	}
	// Refill is capped at the burst depth.
	clock.Advance(time.Hour)
	if got := rl.RetryAfter("c"); got != 0 {
		t.Errorf("RetryAfter after long idle = %v, want 0", got)
	}
	rl.Allow("c")
	rl.Allow("c")
	if rl.Allow("c") {
		t.Error("idle refill must cap at burst depth")
	}
}

func TestRetryAfter(t *testing.T) {
	clock := NewVirtualClock(time.Time{})
	rl := NewRateLimiter(RateConfig{Rate: 2, Burst: 1, Clock: clock})
	if got := rl.RetryAfter("c"); got != 0 {
		t.Fatalf("fresh bucket RetryAfter = %v", got)
	}
	rl.Allow("c")
	// Empty bucket at 2 tokens/s: next token in 500ms.
	if got := rl.RetryAfter("c"); got != 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 500ms", got)
	}
}

func TestEvictionPrefersRefilledBuckets(t *testing.T) {
	clock := NewVirtualClock(time.Time{})
	rl := NewRateLimiter(RateConfig{Rate: 1000, Burst: 2, MaxClients: 2, Clock: clock})
	rl.Allow("a")
	rl.Allow("b")
	// Let both refill fully: evicting them is a semantic no-op, so a new
	// client fits without touching any still-draining state.
	clock.Advance(time.Second)
	if !rl.Allow("c") {
		t.Fatal("new client must be admitted")
	}
	if rl.Clients() > 2 {
		t.Errorf("clients = %d, want <= MaxClients", rl.Clients())
	}
}

func TestEvictionDropsLongestIdleDeterministically(t *testing.T) {
	clock := NewVirtualClock(time.Time{})
	rl := NewRateLimiter(RateConfig{Rate: 0.001, Burst: 5, MaxClients: 2, Clock: clock})
	rl.Allow("old")
	clock.Advance(time.Minute)
	rl.Allow("new")
	clock.Advance(time.Minute)
	// Both buckets are still draining (refill is negligible); the
	// longest-idle one ("old") must go.
	rl.Allow("third")
	if rl.Clients() != 2 {
		t.Fatalf("clients = %d, want 2", rl.Clients())
	}
	// "new" kept its drained state: it still has tokens left from its
	// burst of 5; "old" is gone, so re-adding it gets a fresh bucket.
	if !rl.Allow("new") {
		t.Error("surviving bucket lost its state")
	}
	if !rl.Allow("old") {
		t.Error("evicted client must re-enter with a fresh bucket")
	}
}
