package admission

import (
	"sort"
	"sync"
	"time"

	"qoschain/internal/metrics"
)

// RateConfig tunes a RateLimiter.
type RateConfig struct {
	// Rate is the steady-state tokens (requests) per second each
	// client accrues. Default 50.
	Rate float64
	// Burst is the bucket depth — how many requests a client may fire
	// back to back after an idle period. Default 2×Rate (min 1).
	Burst float64
	// MaxClients bounds the bucket map; beyond it, fully refilled
	// (indistinguishable from fresh) buckets are dropped first, then
	// the longest-idle ones. Default 10000.
	MaxClients int
	// Clock injects time; default SystemClock.
	Clock Clock
	// Metrics receives admission.rate_limited; nil is a no-op sink.
	Metrics *metrics.Counters
}

func (c *RateConfig) rate() float64 {
	if c.Rate > 0 {
		return c.Rate
	}
	return 50
}

func (c *RateConfig) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	if b := 2 * c.rate(); b >= 1 {
		return b
	}
	return 1
}

func (c *RateConfig) maxClients() int {
	if c.MaxClients > 0 {
		return c.MaxClients
	}
	return 10000
}

func (c *RateConfig) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return SystemClock{}
}

// bucket is one client's token state; tokens refill lazily from the
// elapsed time since last.
type bucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter applies per-client token buckets keyed by an opaque
// client string (API key, remote address). It is deterministic under a
// VirtualClock: refills derive purely from clock deltas.
type RateLimiter struct {
	cfg RateConfig

	mu      sync.Mutex
	buckets map[string]*bucket
	limited int64
}

// NewRateLimiter builds a limiter from the config.
func NewRateLimiter(cfg RateConfig) *RateLimiter {
	return &RateLimiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow spends one token of the client's bucket, reporting false (rate
// limited) when none is available.
func (r *RateLimiter) Allow(key string) bool {
	now := r.cfg.clock().Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.refillLocked(key, now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	r.limited++
	r.cfg.Metrics.Inc(metrics.CounterAdmissionRateLimited)
	return false
}

// RetryAfter estimates how long the client must wait for its next
// token — the Retry-After hint a 429 response carries. Zero means a
// token is already available.
func (r *RateLimiter) RetryAfter(key string) time.Duration {
	now := r.cfg.clock().Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.refillLocked(key, now)
	if b.tokens >= 1 {
		return 0
	}
	need := 1 - b.tokens
	return time.Duration(need / r.cfg.rate() * float64(time.Second))
}

// Limited returns how many requests were refused so far.
func (r *RateLimiter) Limited() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.limited
}

// Clients returns the number of tracked buckets.
func (r *RateLimiter) Clients() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}

// refillLocked fetches (or creates) the client's bucket and credits the
// tokens accrued since its last use.
func (r *RateLimiter) refillLocked(key string, now time.Time) *bucket {
	b := r.buckets[key]
	if b == nil {
		if len(r.buckets) >= r.cfg.maxClients() {
			r.evictLocked(now)
		}
		b = &bucket{tokens: r.cfg.burst(), last: now}
		r.buckets[key] = b
		return b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * r.cfg.rate()
		if max := r.cfg.burst(); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	return b
}

// evictLocked bounds the bucket map: fully refilled buckets behave
// exactly like fresh ones, so dropping them never changes an admission
// decision; if every bucket is still draining, the longest-idle ones go
// (sorted by last-use then key, keeping eviction deterministic).
func (r *RateLimiter) evictLocked(now time.Time) {
	burst := r.cfg.burst()
	for key, b := range r.buckets {
		tokens := b.tokens
		if dt := now.Sub(b.last); dt > 0 {
			tokens += dt.Seconds() * r.cfg.rate()
		}
		if tokens >= burst {
			delete(r.buckets, key)
		}
	}
	over := len(r.buckets) - r.cfg.maxClients() + 1
	if over <= 0 {
		return
	}
	type idle struct {
		key  string
		last time.Time
	}
	all := make([]idle, 0, len(r.buckets))
	for key, b := range r.buckets {
		all = append(all, idle{key, b.last})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].last.Equal(all[j].last) {
			return all[i].last.Before(all[j].last)
		}
		return all[i].key < all[j].key
	})
	for i := 0; i < over && i < len(all); i++ {
		delete(r.buckets, all[i].key)
	}
}
