package admission

import (
	"context"
	"testing"
	"time"
)

func TestSubDeadlineFractionOfRemaining(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	sub, subCancel := SubDeadline(parent, 0.5)
	defer subCancel()
	d, ok := sub.Deadline()
	if !ok {
		t.Fatal("sub context must carry a deadline")
	}
	remaining := time.Until(d)
	if remaining <= 400*time.Millisecond || remaining > 500*time.Millisecond {
		t.Errorf("sub budget = %v, want ~500ms", remaining)
	}
}

func TestSubDeadlineUnboundedParent(t *testing.T) {
	sub, cancel := SubDeadline(context.Background(), 0.25)
	defer cancel()
	if _, ok := sub.Deadline(); ok {
		t.Error("an unbounded parent must stay unbounded")
	}
}

func TestSubDeadlineInvalidFractionUsesWhole(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, f := range []float64{0, -1, 2} {
		sub, subCancel := SubDeadline(parent, f)
		d, _ := sub.Deadline()
		if remaining := time.Until(d); remaining < 900*time.Millisecond {
			t.Errorf("fraction %v: budget = %v, want the whole remainder", f, remaining)
		}
		subCancel()
	}
}

func TestSubDeadlineExpiredParent(t *testing.T) {
	parent, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sub, subCancel := SubDeadline(parent, 0.5)
	defer subCancel()
	if sub.Err() == nil {
		t.Error("sub of an expired parent must be expired")
	}
}

func TestWithBudgetBoundsUnboundedParent(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("budget must bound an unbounded parent")
	}
}

func TestWithBudgetNeverExtendsParent(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ctx, budgetCancel := WithBudget(parent, time.Hour)
	defer budgetCancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("deadline lost")
	}
	if time.Until(d) > 50*time.Millisecond {
		t.Errorf("budget extended the parent's deadline to %v away", time.Until(d))
	}
}

func TestWithBudgetZeroPassesThrough(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero budget must not add a deadline")
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	start := c.Now()
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Errorf("Advance moved %v, want 3s", got)
	}
}
