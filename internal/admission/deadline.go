package admission

import (
	"context"
	"time"
)

// Deadline propagation: a request that enters with a budget should
// spend it deliberately — a slice on discovery, a slice on planning —
// so one slow stage cannot silently eat the whole budget and leave the
// rest of the pipeline to time out in a worse place.

// SubDeadline derives a context whose deadline is the given fraction of
// the parent's remaining budget (clamped to (0,1]). A parent without a
// deadline is returned unchanged; the cancel function is always safe to
// call.
func SubDeadline(ctx context.Context, fraction float64) (context.Context, context.CancelFunc) {
	deadline, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		// Already expired; hand back the parent so callers observe the
		// parent's own error.
		return context.WithCancel(ctx)
	}
	budget := time.Duration(float64(remaining) * fraction)
	return context.WithTimeout(ctx, budget)
}

// WithBudget bounds a context by d when the parent is unbounded or
// looser; a parent already tighter than d is returned as-is (a stage
// never extends its caller's deadline).
func WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}
