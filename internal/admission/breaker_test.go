package admission

import (
	"errors"
	"testing"
	"time"

	"qoschain/internal/metrics"
)

func virtualBreaker(threshold, probes int, timeout time.Duration) (*Breaker, *VirtualClock, *metrics.Counters) {
	clock := NewVirtualClock(time.Time{})
	counters := metrics.NewCounters()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		OpenTimeout:      timeout,
		HalfOpenProbes:   probes,
		Clock:            clock,
		Metrics:          counters,
	})
	return b, clock, counters
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _, counters := virtualBreaker(3, 1, time.Second)
	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatal("two failures must not trip a threshold-3 breaker")
	}
	b.Record(true) // success resets the streak
	b.Record(false)
	b.Record(false)
	if b.State() != Closed {
		t.Fatal("streak must reset on success")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatal("three consecutive failures must trip the breaker")
	}
	if b.Allow() {
		t.Error("open breaker must shed")
	}
	if counters.Get(metrics.CounterBreakerOpened) != 1 {
		t.Errorf("breaker_opened = %d", counters.Get(metrics.CounterBreakerOpened))
	}
}

func TestBreakerHalfOpenAfterCooldownThenCloses(t *testing.T) {
	b, clock, counters := virtualBreaker(1, 2, time.Second)
	b.Record(false)
	if b.Allow() {
		t.Fatal("freshly opened breaker must shed")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cool-down elapsed: a probe must be admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Probe allowance is bounded: one outstanding probe is admitted, a
	// second may run concurrently (HalfOpenProbes 2), a third may not.
	if !b.Allow() {
		t.Fatal("second probe within allowance must be admitted")
	}
	if b.Allow() {
		t.Fatal("probe allowance exceeded")
	}
	b.Record(true)
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, b.State())
	}
	if counters.Get(metrics.CounterBreakerHalfOpen) != 1 || counters.Get(metrics.CounterBreakerClosed) != 1 {
		t.Errorf("transition counters: half_open=%d closed=%d",
			counters.Get(metrics.CounterBreakerHalfOpen), counters.Get(metrics.CounterBreakerClosed))
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clock, _ := virtualBreaker(1, 1, time.Second)
	b.Record(false)
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatal("failed probe must re-open the breaker")
	}
	if b.Allow() {
		t.Error("re-opened breaker must shed until the next cool-down")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Error("next cool-down must admit a fresh probe")
	}
}

func TestBreakerStragglerFailureRefreshesCooldown(t *testing.T) {
	b, clock, _ := virtualBreaker(1, 1, time.Second)
	b.Record(false)
	clock.Advance(900 * time.Millisecond)
	b.Record(false) // straggling in-flight call fails after the trip
	clock.Advance(200 * time.Millisecond)
	if b.Allow() {
		t.Error("straggler failure must refresh the cool-down window")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Error("refreshed cool-down must still elapse")
	}
}

func TestBreakerDo(t *testing.T) {
	b, clock, _ := virtualBreaker(1, 1, time.Second)
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); err != boom {
		t.Fatalf("Do must surface the call's error, got %v", err)
	}
	err := b.Do(func() error { t.Fatal("open breaker must not call fn"); return nil })
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open Do err = %v, want ErrBreakerOpen wrapping ErrOverloaded", err)
	}
	clock.Advance(time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do err = %v", err)
	}
	if b.State() != Closed {
		t.Errorf("state = %v after successful probe", b.State())
	}
}
