package admission

import (
	"context"
	"fmt"
	"sync"
	"time"

	"qoschain/internal/metrics"
)

// LimiterConfig tunes a Limiter. The zero value of optional fields
// picks the documented defaults.
type LimiterConfig struct {
	// Capacity is the number of requests allowed in flight at once.
	// Default 16.
	Capacity int
	// MaxQueue bounds how many requests may wait for a slot; an
	// arrival past the bound is shed immediately. Default 64. Zero
	// queue (set MaxQueue to -1) sheds everything over Capacity.
	MaxQueue int
	// Clock injects time; default SystemClock. Queued tickets expire
	// against it.
	Clock Clock
	// Metrics receives admission.* counters; nil is a no-op sink.
	Metrics *metrics.Counters
}

func (c *LimiterConfig) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 16
}

func (c *LimiterConfig) maxQueue() int {
	switch {
	case c.MaxQueue > 0:
		return c.MaxQueue
	case c.MaxQueue < 0:
		return 0
	default:
		return 64
	}
}

func (c *LimiterConfig) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return SystemClock{}
}

// ticket states.
const (
	stateWaiting = iota
	stateAdmitted
	stateShed
	stateReleased
)

// Ticket is one request's passage through the limiter. Concurrent
// callers get one implicitly via Acquire; deterministic drivers (the
// simulator) hold tickets explicitly via Offer and complete them with
// Release.
type Ticket struct {
	lim      *Limiter
	ready    chan struct{} // non-nil for Acquire waiters; closed on grant/shed
	state    int
	deadline time.Time // zero = waits forever
	enqueued time.Time // when the ticket entered the wait queue
	err      error     // shed reason
}

// Admitted reports whether the ticket currently holds a slot.
func (t *Ticket) Admitted() bool {
	t.lim.mu.Lock()
	defer t.lim.mu.Unlock()
	return t.state == stateAdmitted
}

// Shed reports whether the ticket was refused (queue full or deadline
// expired while queued); Err carries the reason.
func (t *Ticket) Shed() bool {
	t.lim.mu.Lock()
	defer t.lim.mu.Unlock()
	return t.state == stateShed
}

// Err returns the shed reason (nil unless Shed).
func (t *Ticket) Err() error {
	t.lim.mu.Lock()
	defer t.lim.mu.Unlock()
	return t.err
}

// Release returns an admitted ticket's slot, promoting the queue head.
// Releasing a non-admitted ticket is a no-op.
func (t *Ticket) Release() {
	t.lim.mu.Lock()
	if t.state != stateAdmitted {
		t.lim.mu.Unlock()
		return
	}
	t.state = stateReleased
	t.lim.releaseSlotLocked()
	t.lim.mu.Unlock()
}

// LimiterStats is a consistent snapshot of a limiter's state and
// lifetime totals.
type LimiterStats struct {
	// InFlight and QueueLen are the instantaneous occupancy.
	InFlight, QueueLen int
	// Admitted counts requests that obtained a slot (directly or after
	// queueing); Queued counts the ones that had to wait first.
	Admitted, Queued int64
	// ShedQueueFull and ShedExpired count refusals: arrival at a full
	// queue, and deadline expiry while waiting.
	ShedQueueFull, ShedExpired int64
}

// Limiter is the deadline-aware concurrency limiter: at most Capacity
// requests run at once, at most MaxQueue wait in FIFO order, and a
// waiter past its deadline is shed with ErrOverloaded. It has no
// background goroutines, so an idle limiter costs nothing and can never
// leak.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	inFlight int
	queue    []*Ticket
	stats    LimiterStats
}

// NewLimiter builds a limiter from the config.
func NewLimiter(cfg LimiterConfig) *Limiter {
	return &Limiter{cfg: cfg}
}

// Acquire obtains a slot, waiting in FIFO order behind earlier arrivals
// up to the context's deadline. It returns a release function that must
// be called exactly once when the request finishes. On refusal it
// returns an error wrapping ErrOverloaded: immediately when the queue
// is full, or when ctx expires/cancels while queued.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	l.mu.Lock()
	t := l.offerLocked(true, deadlineOf(ctx))
	switch t.state {
	case stateAdmitted:
		l.mu.Unlock()
		return func() { t.Release() }, nil
	case stateShed:
		l.mu.Unlock()
		return nil, t.err
	}
	// Queued: wait for grant, shed, or context expiry.
	l.mu.Unlock()
	select {
	case <-t.ready:
		l.mu.Lock()
		state, terr := t.state, t.err
		l.mu.Unlock()
		if state == stateAdmitted {
			return func() { t.Release() }, nil
		}
		return nil, terr
	case <-ctx.Done():
		l.mu.Lock()
		if t.state == stateAdmitted {
			// The grant raced the cancellation; honor it. The
			// caller observes the context error on its own.
			l.mu.Unlock()
			return func() { t.Release() }, nil
		}
		if t.state == stateWaiting {
			l.removeLocked(t)
			l.shedLocked(t, shedExpired, fmt.Errorf("%w: abandoned while queued: %v", ErrOverloaded, ctx.Err()))
		}
		err = t.err
		l.mu.Unlock()
		return nil, err
	}
}

// Offer is the deterministic entry point: it admits, queues, or sheds
// without blocking and returns the ticket. A queued ticket is granted
// by a later Release (FIFO) or shed by Expire once the clock passes its
// deadline (zero deadline waits indefinitely). Single-threaded drivers
// get an exactly replayable schedule.
func (l *Limiter) Offer(deadline time.Time) *Ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offerLocked(false, deadline)
}

// offerLocked admits/queues/sheds one arrival. waiter selects whether
// the ticket gets a ready channel for a blocked Acquire caller.
func (l *Limiter) offerLocked(waiter bool, deadline time.Time) *Ticket {
	t := &Ticket{lim: l, deadline: deadline}
	if l.inFlight < l.cfg.capacity() {
		l.inFlight++
		t.state = stateAdmitted
		l.stats.Admitted++
		l.cfg.Metrics.Inc(metrics.CounterAdmissionAdmitted)
		return t
	}
	if len(l.queue) >= l.cfg.maxQueue() {
		l.shedLocked(t, shedQueueFull, fmt.Errorf("%w: queue full (%d in flight, %d waiting)",
			ErrOverloaded, l.inFlight, len(l.queue)))
		return t
	}
	if waiter {
		t.ready = make(chan struct{})
	}
	t.enqueued = l.cfg.clock().Now()
	l.queue = append(l.queue, t)
	l.stats.Queued++
	l.cfg.Metrics.Inc(metrics.CounterAdmissionQueued)
	return t
}

// releaseSlotLocked frees one slot and hands it to the first queued
// ticket that is still within its deadline; expired heads are shed on
// the way.
func (l *Limiter) releaseSlotLocked() {
	now := l.cfg.clock().Now()
	for len(l.queue) > 0 {
		t := l.queue[0]
		l.queue = l.queue[1:]
		if !t.deadline.IsZero() && now.After(t.deadline) {
			l.shedLocked(t, shedExpired, fmt.Errorf("%w: deadline expired after queueing", ErrOverloaded))
			continue
		}
		t.state = stateAdmitted
		l.stats.Admitted++
		l.cfg.Metrics.Inc(metrics.CounterAdmissionAdmitted)
		// Queue wait is measured on the injected clock, so deterministic
		// drivers (VirtualClock) record replayable waits.
		l.cfg.Metrics.Observe(metrics.HistQueueWaitMs, float64(now.Sub(t.enqueued))/float64(time.Millisecond))
		if t.ready != nil {
			close(t.ready)
		}
		return
	}
	l.inFlight--
}

// Expire sheds every queued ticket whose deadline has passed and
// returns how many it shed. Deterministic drivers call it after
// advancing their virtual clock; the concurrent path does not need it
// (waiters shed themselves via their context).
func (l *Limiter) Expire() int {
	now := l.cfg.clock().Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.queue[:0]
	shed := 0
	for _, t := range l.queue {
		if !t.deadline.IsZero() && now.After(t.deadline) {
			l.shedLocked(t, shedExpired, fmt.Errorf("%w: deadline expired after queueing", ErrOverloaded))
			shed++
			continue
		}
		kept = append(kept, t)
	}
	l.queue = kept
	return shed
}

// shed flavors, for accounting.
const (
	shedQueueFull = iota
	shedExpired
)

// shedLocked marks a ticket refused and accounts it.
func (l *Limiter) shedLocked(t *Ticket, kind int, err error) {
	t.state = stateShed
	t.err = err
	if t.ready != nil {
		close(t.ready)
	}
	if kind == shedExpired {
		l.stats.ShedExpired++
		l.cfg.Metrics.Inc(metrics.CounterAdmissionShedExpired)
	} else {
		l.stats.ShedQueueFull++
		l.cfg.Metrics.Inc(metrics.CounterAdmissionShedQueueFull)
	}
}

// removeLocked drops a ticket from the wait queue (context expiry on
// the concurrent path).
func (l *Limiter) removeLocked(t *Ticket) {
	for i, q := range l.queue {
		if q == t {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// Stats snapshots occupancy and lifetime totals.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.InFlight = l.inFlight
	st.QueueLen = len(l.queue)
	return st
}

// deadlineOf extracts a context deadline (zero when unbounded).
func deadlineOf(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Time{}
}
