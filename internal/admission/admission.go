// Package admission is the serving layer's overload protection: the
// request-admission discipline that keeps a burst of compose/session
// traffic from oversubscribing overlay links, piling onto the planner,
// or hanging on a slow registry. The paper composes each chain under
// per-link bandwidth and cost budgets (Section 4.3); this package
// applies the same budget thinking at the boundary where requests enter
// the system, in four layers:
//
//  1. Limiter — a deadline-aware concurrency limiter with a bounded
//     FIFO queue. Requests beyond the in-flight cap wait in arrival
//     order up to their context deadline, then are shed with
//     ErrOverloaded; a full queue sheds immediately.
//  2. RateLimiter — per-client token buckets, so one hot client cannot
//     starve the rest of the queue.
//  3. Capacity admission — overlay.Network.ReserveChain atomically
//     holds a chain's per-edge bandwidth before activation and rejects
//     compositions that would oversubscribe live reservations
//     (internal/overlay; sessions wire it through Config.ReserveBandwidth).
//  4. Breaker — a success-rate circuit breaker (closed/open/half-open)
//     guarding slow or failed downstreams such as federation remotes;
//     an open breaker sheds calls instantly so callers fall back (the
//     registry serves its last-known-good directory).
//
// Everything is deterministic under an injected Clock: tests and the
// adaptsim -overload scenario drive a VirtualClock step by step and get
// an exact, replayable admitted/queued/shed breakdown. All components
// report through metrics.Counters (the admission.* names in
// internal/metrics); a nil counter sink is a valid no-op.
package admission

import (
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is the typed shed signal: the system refused work to
// protect itself. Wrapping errors say why (queue full, deadline expired
// while queued, rate limited). HTTP layers map it to 429/503 with a
// Retry-After hint.
var ErrOverloaded = errors.New("admission: overloaded")

// ErrRateLimited is returned when a client exhausted its token bucket.
// It wraps ErrOverloaded so a single errors.Is covers every shed path.
var ErrRateLimited = &wrappedErr{msg: "admission: client rate limited", wraps: ErrOverloaded}

// ErrBreakerOpen is returned when a circuit breaker sheds a call while
// open. It wraps ErrOverloaded.
var ErrBreakerOpen = &wrappedErr{msg: "admission: circuit breaker open", wraps: ErrOverloaded}

// wrappedErr is a sentinel error that also matches a broader sentinel.
type wrappedErr struct {
	msg   string
	wraps error
}

func (e *wrappedErr) Error() string { return e.msg }
func (e *wrappedErr) Unwrap() error { return e.wraps }

// Clock abstracts time so overload behavior replays exactly in tests
// and simulations.
type Clock interface {
	Now() time.Time
}

// SystemClock is the wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock: nothing moves unless the
// driver moves it, which is what makes overload experiments replayable.
type VirtualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewVirtualClock starts at the given instant (a zero start uses a
// fixed arbitrary epoch so durations stay positive).
func NewVirtualClock(start time.Time) *VirtualClock {
	if start.IsZero() {
		start = time.Date(2007, 4, 15, 0, 0, 0, 0, time.UTC)
	}
	return &VirtualClock{t: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
