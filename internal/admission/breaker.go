package admission

import (
	"sync"
	"time"

	"qoschain/internal/metrics"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes traffic, Open sheds everything until
// the cool-down elapses, HalfOpen lets a bounded number of probes
// through to test the downstream.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String renders the state for status endpoints and logs.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the
	// breaker open. Default 5.
	FailureThreshold int
	// OpenTimeout is the cool-down before an open breaker admits
	// half-open probes. Default 5s.
	OpenTimeout time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again (and the concurrent probe allowance while
	// half-open). Default 1.
	HalfOpenProbes int
	// Clock injects time; default SystemClock.
	Clock Clock
	// Metrics receives admission.breaker_* transition counters; nil is
	// a no-op sink.
	Metrics *metrics.Counters
}

func (c *BreakerConfig) failureThreshold() int {
	if c.FailureThreshold > 0 {
		return c.FailureThreshold
	}
	return 5
}

func (c *BreakerConfig) openTimeout() time.Duration {
	if c.OpenTimeout > 0 {
		return c.OpenTimeout
	}
	return 5 * time.Second
}

func (c *BreakerConfig) halfOpenProbes() int {
	if c.HalfOpenProbes > 0 {
		return c.HalfOpenProbes
	}
	return 1
}

func (c *BreakerConfig) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return SystemClock{}
}

// Breaker is a success-rate circuit breaker guarding a downstream (a
// federation remote, a slow registry): consecutive failures trip it
// open, an open breaker sheds calls instantly so callers fall back to
// a cache instead of blocking on a dead peer, and after a cool-down a
// few probes decide between closing it again and re-opening.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probes    int       // probes admitted and not yet recorded
	openedAt  time.Time // when the breaker last tripped
}

// NewBreaker builds a closed breaker from the config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cool-down elapses, then flips to half-open and admits up to
// HalfOpenProbes outstanding probes. Every admitted call must be
// matched by a Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.clock().Now().Sub(b.openedAt) < b.cfg.openTimeout() {
			return false
		}
		b.transitionLocked(HalfOpen)
		b.probes = 1
		return true
	default: // HalfOpen
		if b.probes >= b.cfg.halfOpenProbes() {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports one call's outcome. While closed, FailureThreshold
// consecutive failures trip the breaker; while half-open, a single
// failure re-opens it and HalfOpenProbes consecutive successes close
// it.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.failureThreshold() {
			b.transitionLocked(Open)
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.transitionLocked(Open)
			return
		}
		b.successes++
		if b.successes >= b.cfg.halfOpenProbes() {
			b.transitionLocked(Closed)
		}
	case Open:
		// A straggling call recorded after the trip; an extra failure
		// refreshes the cool-down so a storm of stragglers cannot
		// close the window early.
		if !success {
			b.openedAt = b.cfg.clock().Now()
		}
	}
}

// Do runs fn under the breaker: an open breaker returns ErrBreakerOpen
// without calling it; otherwise fn's error feeds Record.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrBreakerOpen
	}
	err := fn()
	b.Record(err == nil)
	return err
}

// State returns the breaker's current position (an open breaker past
// its cool-down still reports Open until the next Allow flips it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionLocked switches state and accounts the transition.
func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	switch to {
	case Open:
		b.openedAt = b.cfg.clock().Now()
		b.failures = 0
		b.successes = 0
		b.probes = 0
		b.cfg.Metrics.Inc(metrics.CounterBreakerOpened)
	case HalfOpen:
		b.successes = 0
		b.cfg.Metrics.Inc(metrics.CounterBreakerHalfOpen)
	case Closed:
		b.failures = 0
		b.successes = 0
		b.probes = 0
		b.cfg.Metrics.Inc(metrics.CounterBreakerClosed)
	}
}
