package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"qoschain/internal/metrics"
)

func virtualLimiter(capacity, maxQueue int) (*Limiter, *VirtualClock, *metrics.Counters) {
	clock := NewVirtualClock(time.Time{})
	counters := metrics.NewCounters()
	lim := NewLimiter(LimiterConfig{
		Capacity: capacity,
		MaxQueue: maxQueue,
		Clock:    clock,
		Metrics:  counters,
	})
	return lim, clock, counters
}

func TestOfferAdmitsUpToCapacity(t *testing.T) {
	lim, clock, _ := virtualLimiter(2, 4)
	a := lim.Offer(clock.Now().Add(time.Second))
	b := lim.Offer(clock.Now().Add(time.Second))
	c := lim.Offer(clock.Now().Add(time.Second))
	if !a.Admitted() || !b.Admitted() {
		t.Fatal("first two offers must be admitted directly")
	}
	if c.Admitted() || c.Shed() {
		t.Fatal("third offer must queue")
	}
	st := lim.Stats()
	if st.InFlight != 2 || st.QueueLen != 1 || st.Admitted != 2 || st.Queued != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOfferShedsWhenQueueFull(t *testing.T) {
	lim, clock, counters := virtualLimiter(1, 1)
	lim.Offer(time.Time{})
	lim.Offer(time.Time{}) // fills the queue
	shed := lim.Offer(clock.Now().Add(time.Second))
	if !shed.Shed() {
		t.Fatal("arrival past the queue bound must shed")
	}
	if !errors.Is(shed.Err(), ErrOverloaded) {
		t.Errorf("shed error %v must wrap ErrOverloaded", shed.Err())
	}
	if counters.Get(metrics.CounterAdmissionShedQueueFull) != 1 {
		t.Errorf("shed_queue_full counter = %d", counters.Get(metrics.CounterAdmissionShedQueueFull))
	}
}

func TestZeroQueueShedsEverythingOverCapacity(t *testing.T) {
	lim, _, _ := virtualLimiter(1, -1)
	lim.Offer(time.Time{})
	if !lim.Offer(time.Time{}).Shed() {
		t.Fatal("MaxQueue -1 must shed every arrival over capacity")
	}
}

func TestExpireShedsQueuedPastDeadline(t *testing.T) {
	lim, clock, counters := virtualLimiter(1, 4)
	held := lim.Offer(time.Time{})
	short := lim.Offer(clock.Now().Add(50 * time.Millisecond))
	long := lim.Offer(clock.Now().Add(500 * time.Millisecond))
	clock.Advance(100 * time.Millisecond)
	if n := lim.Expire(); n != 1 {
		t.Fatalf("Expire = %d, want 1", n)
	}
	if !short.Shed() || !errors.Is(short.Err(), ErrOverloaded) {
		t.Errorf("short-deadline ticket: shed=%v err=%v", short.Shed(), short.Err())
	}
	if long.Shed() || long.Admitted() {
		t.Error("long-deadline ticket must stay queued")
	}
	if counters.Get(metrics.CounterAdmissionShedExpired) != 1 {
		t.Errorf("shed_deadline counter = %d", counters.Get(metrics.CounterAdmissionShedExpired))
	}
	held.Release()
	if !long.Admitted() {
		t.Error("release must promote the surviving waiter")
	}
}

func TestReleasePromotesFIFO(t *testing.T) {
	lim, _, _ := virtualLimiter(1, 4)
	first := lim.Offer(time.Time{})
	q1 := lim.Offer(time.Time{})
	q2 := lim.Offer(time.Time{})
	first.Release()
	if !q1.Admitted() || q2.Admitted() {
		t.Fatal("release must promote the queue head, in arrival order")
	}
	// The slot transferred: in-flight stays at capacity.
	if st := lim.Stats(); st.InFlight != 1 || st.QueueLen != 1 {
		t.Errorf("stats after promotion = %+v", st)
	}
	q1.Release()
	if !q2.Admitted() {
		t.Fatal("second release must promote the next waiter")
	}
	q2.Release()
	if st := lim.Stats(); st.InFlight != 0 {
		t.Errorf("in flight after drain = %d", st.InFlight)
	}
}

func TestReleaseSkipsExpiredHeads(t *testing.T) {
	lim, clock, _ := virtualLimiter(1, 4)
	held := lim.Offer(time.Time{})
	expired := lim.Offer(clock.Now().Add(10 * time.Millisecond))
	live := lim.Offer(clock.Now().Add(time.Minute))
	clock.Advance(time.Second)
	held.Release()
	if !expired.Shed() {
		t.Error("expired head must be shed during promotion")
	}
	if !live.Admitted() {
		t.Error("first live waiter must take the slot")
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	lim, _, _ := virtualLimiter(1, 2)
	a := lim.Offer(time.Time{})
	b := lim.Offer(time.Time{})
	a.Release()
	a.Release() // double release must not free a second slot
	if st := lim.Stats(); st.InFlight != 1 {
		t.Errorf("in flight = %d after double release, want 1", st.InFlight)
	}
	if !b.Admitted() {
		t.Error("waiter must hold the transferred slot")
	}
}

// TestDeterministicTenXBurst replays the acceptance scenario: a 10x
// burst against capacity N under a virtual clock yields an exact,
// replayable admitted/queued/shed breakdown.
func TestDeterministicTenXBurst(t *testing.T) {
	run := func() LimiterStats {
		lim, clock, _ := virtualLimiter(4, 8)
		const n = 40 // 10x capacity
		tickets := make([]*Ticket, 0, n)
		for i := 0; i < n; i++ {
			tickets = append(tickets, lim.Offer(clock.Now().Add(100*time.Millisecond)))
		}
		// Service takes 60ms per admitted request; tick in 20ms steps
		// until everything resolves.
		type running struct {
			t      *Ticket
			finish time.Time
		}
		var active []running
		collect := func(now time.Time) {
			for _, tk := range tickets {
				already := false
				for _, r := range active {
					if r.t == tk {
						already = true
						break
					}
				}
				if tk.Admitted() && !already {
					active = append(active, running{tk, now.Add(60 * time.Millisecond)})
				}
			}
		}
		collect(clock.Now())
		for step := 0; step < 50; step++ {
			clock.Advance(20 * time.Millisecond)
			now := clock.Now()
			keep := active[:0]
			for _, r := range active {
				if !now.Before(r.finish) {
					r.t.Release()
					continue
				}
				keep = append(keep, r)
			}
			active = keep
			lim.Expire()
			collect(now)
			st := lim.Stats()
			if st.InFlight == 0 && st.QueueLen == 0 && len(active) == 0 {
				break
			}
		}
		return lim.Stats()
	}

	first := run()
	second := run()
	if first != second {
		t.Fatalf("burst not replayable: %+v vs %+v", first, second)
	}
	// Exact breakdown: 4 admitted directly; 8 queue, of which the first 4
	// are promoted at t=60ms (within their 100ms deadline) and the last 4
	// expire before the second wave of slots frees at t=120ms; 28 shed at
	// the full queue. Every request accounted once.
	if first.Admitted != 8 || first.Queued != 8 || first.ShedQueueFull != 28 || first.ShedExpired != 4 {
		t.Errorf("breakdown = %+v", first)
	}
	if first.Admitted+first.ShedQueueFull+first.ShedExpired != 40 {
		t.Errorf("requests unaccounted: %+v", first)
	}
}

func TestAcquireImmediateAndQueueFull(t *testing.T) {
	lim := NewLimiter(LimiterConfig{Capacity: 1, MaxQueue: -1})
	release, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lim.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated zero-queue Acquire err = %v", err)
	}
	release()
	release2, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	release2()
}

func TestAcquireDeadlineExpiresWhileQueued(t *testing.T) {
	lim := NewLimiter(LimiterConfig{Capacity: 1, MaxQueue: 4})
	release, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := lim.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued Acquire past deadline err = %v", err)
	}
	if st := lim.Stats(); st.ShedExpired != 1 || st.QueueLen != 0 {
		t.Errorf("stats = %+v", st)
	}
	release()
	if st := lim.Stats(); st.InFlight != 0 {
		t.Errorf("in flight = %d after drain", st.InFlight)
	}
}

func TestAcquireCancelWhileQueued(t *testing.T) {
	lim := NewLimiter(LimiterConfig{Capacity: 1, MaxQueue: 4})
	release, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := lim.Acquire(ctx)
		errc <- err
	}()
	// Wait until the goroutine is queued, then cancel.
	for lim.Stats().QueueLen == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled Acquire err = %v", err)
	}
}

// TestConcurrentAcquireNoLeaks saturates the limiter from many
// goroutines and verifies the books balance and no goroutine outlives
// the burst.
func TestConcurrentAcquireNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	lim := NewLimiter(LimiterConfig{Capacity: 4, MaxQueue: 8})
	const n = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted, refused := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			release, err := lim.Acquire(ctx)
			mu.Lock()
			if err != nil {
				refused++
			} else {
				granted++
			}
			mu.Unlock()
			if err == nil {
				time.Sleep(time.Millisecond)
				release()
			}
		}()
	}
	wg.Wait()
	if granted+refused != n {
		t.Fatalf("granted %d + refused %d != %d", granted, refused, n)
	}
	st := lim.Stats()
	if st.InFlight != 0 || st.QueueLen != 0 {
		t.Errorf("limiter not drained: %+v", st)
	}
	if int(st.Admitted) != granted || int(st.ShedQueueFull+st.ShedExpired) != refused {
		t.Errorf("stats disagree with outcomes: %+v vs granted=%d refused=%d", st, granted, refused)
	}
	// The limiter runs no background goroutines; allow the runtime a
	// moment to retire the workers.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
