// Data-plane benchmarks (EXT-M in EXPERIMENTS.md): the batched,
// pooled, backpressure-aware pipeline executor against the seed
// implementation's frame-at-a-time protocol, plus the shared-executor
// scaling sweep. Results are pinned in BENCH_pipeline.json; the
// regression guard (pipeline_perf_guard_test.go) re-measures the
// speedup in CI.
package qoschain

import (
	"fmt"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/pipeline"
	"qoschain/internal/workload"
)

const benchFrames = 2000

// dataPlaneChain selects a 5-service backbone chain — the shape the
// ISSUE's acceptance numbers are defined on.
func dataPlaneChain(b *testing.B) (workload.Scenario, *core.Result) {
	b.Helper()
	sc := lineScenario(5)
	res, err := core.Select(sc.Graph, sc.Config)
	if err != nil || !res.Found {
		b.Fatal("5-stage selection failed")
	}
	return sc, res
}

// BenchmarkDataPlaneReference is the "before" side: the seed protocol —
// whole stream materialized up front, goroutine per element, one channel
// operation per frame, no payload recycling.
func BenchmarkDataPlaneReference(b *testing.B) {
	sc, res := dataPlaneChain(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{NoPool: true})
		if err != nil {
			b.Fatal(err)
		}
		stats := p.RunReference(benchFrames)
		if stats.FramesOut == 0 {
			b.Fatal("no frames delivered")
		}
	}
	reportFrameRate(b)
}

// BenchmarkDataPlaneBatched sweeps the batch size through the batched,
// pooled Run. batch=1 isolates the cost of the queue protocol itself;
// batch=64 is the default the acceptance numbers are pinned at.
func BenchmarkDataPlaneBatched(b *testing.B) {
	sc, res := dataPlaneChain(b)
	for _, batch := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{Batch: batch})
				if err != nil {
					b.Fatal(err)
				}
				stats := p.Run(benchFrames)
				if stats.FramesOut == 0 {
					b.Fatal("no frames delivered")
				}
			}
			reportFrameRate(b)
		})
	}
}

// BenchmarkDataPlaneExecutor drives fleets of concurrent chains through
// one shared worker pool — the daemon deployment shape. Sessions share
// the payload pool, so the steady state allocates almost nothing no
// matter how many chains are in flight.
func BenchmarkDataPlaneExecutor(b *testing.B) {
	sc, res := dataPlaneChain(b)
	for _, sessions := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex := pipeline.NewExecutor(0)
				handles := make([]*pipeline.Handle, sessions)
				for s := range handles {
					p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{})
					if err != nil {
						b.Fatal(err)
					}
					h, err := ex.Submit(p, benchFrames/4)
					if err != nil {
						b.Fatal(err)
					}
					handles[s] = h
				}
				for _, h := range handles {
					if st := h.Wait(); st.FramesOut == 0 {
						b.Fatal("no frames delivered")
					}
				}
				ex.Close()
			}
			b.ReportMetric(
				float64(sessions)*float64(benchFrames/4)*float64(b.N)/b.Elapsed().Seconds(),
				"frames/sec")
		})
	}
}

// reportFrameRate converts ns/op into the source-frame throughput the
// acceptance criteria are phrased in.
func reportFrameRate(b *testing.B) {
	b.ReportMetric(float64(benchFrames)*float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
}
