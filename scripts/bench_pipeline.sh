#!/bin/sh
# bench_pipeline.sh — race-test the data plane, then run the pipeline
# throughput benchmarks with allocation reporting, 5 repetitions for
# benchstat comparison against the records in BENCH_pipeline.json.
#
# Usage: scripts/bench_pipeline.sh [output-file]
#   With an argument, benchmark output is also written to that file so
#   two runs can be compared with benchstat:
#     scripts/bench_pipeline.sh old.txt; <apply change>; scripts/bench_pipeline.sh new.txt
#     benchstat old.txt new.txt
set -eu

cd "$(dirname "$0")/.."

go vet ./internal/pipeline/ ./internal/transcode/
go test -race ./internal/pipeline/ ./internal/transcode/

out="${1:-}"
if [ -n "$out" ]; then
	go test -run 'TestNone' -bench 'DataPlane' -benchmem -count=5 ./ | tee "$out"
else
	go test -run 'TestNone' -bench 'DataPlane' -benchmem -count=5 ./
fi
