#!/bin/sh
# bench.sh — vet, race-test, then run the selection benchmarks with
# allocation reporting, 5 repetitions for benchstat comparison.
#
# Usage: scripts/bench.sh [output-file]
#   With an argument, benchmark output is also written to that file so
#   two runs can be compared with benchstat:
#     scripts/bench.sh old.txt; <apply change>; scripts/bench.sh new.txt
#     benchstat old.txt new.txt
set -eu

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...

out="${1:-}"
if [ -n "$out" ]; then
	go test -run 'TestNone' -bench 'Select' -benchmem -count=5 ./ | tee "$out"
else
	go test -run 'TestNone' -bench 'Select' -benchmem -count=5 ./
fi
