// Package qoschain is a QoS-driven service-composition framework for
// multimedia content adaptation, reproducing "A QoS-based Service
// Composition for Content Adaptation" (El-Khatib, Bochmann, El-Saddik,
// ICDE 2007).
//
// Given the six profiles of the paper's Section 3 — user, content,
// context, device, network and intermediaries — the framework builds a
// directed graph of trans-coding services (Section 4.2), then runs the
// greedy QoS selection algorithm (Section 4.4, Figure 4) to find the
// chain of services that maximizes the user's satisfaction with the
// delivered content, subject to per-link bandwidth and the user's budget.
//
// The high-level entry point is Compose:
//
//	set := &profile.Set{ ... }
//	comp, err := qoschain.Compose(set, qoschain.Options{})
//	fmt.Println(comp.Result.Summary())
//	stats, _ := comp.Stream(900) // run the chain over a synthetic stream
//
// The underlying pieces (graph construction, the selection algorithm and
// its baselines, the overlay simulator, the streaming pipeline and the
// session manager) live in internal/ packages; the examples/ directory
// shows each of them in use.
package qoschain

import (
	"context"
	"fmt"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/pipeline"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/trace"
)

// buildGraph builds (or fetches) the adaptation graph for a compose
// call, recording a "graph.build" span with the cache outcome when the
// context carries a trace.
func buildGraph(ctx context.Context, set *profile.Set, opts Options) (*graph.Graph, error) {
	sp := trace.FromContext(ctx).StartSpan("graph.build")
	var (
		g       *graph.Graph
		outcome graph.BuildOutcome
		err     error
	)
	if opts.Cache != nil && !opts.Prune {
		g, outcome, err = opts.Cache.BuildFromSetEx(set)
	} else {
		g, err = graph.BuildFromSet(set)
		outcome = "uncached"
	}
	if err != nil {
		sp.End(trace.Str("cache", string(outcome)), trace.Str("outcome", "error"))
		return nil, err
	}
	if opts.Prune {
		g.Prune()
	}
	sp.End(trace.Str("cache", string(outcome)), trace.Int("nodes", g.NodeIndexCount()))
	return g, nil
}

// Options tunes a composition.
type Options struct {
	// Contact selects the user's per-contact preference overrides
	// (profile.ContactAny uses the defaults).
	Contact profile.ContactClass
	// Trace records the per-round Table 1 style trace on the result.
	Trace bool
	// Prune removes useless vertices/edges before selection.
	Prune bool
	// Bitrate overrides the bandwidth-requirement model of Equation 2
	// (nil uses media.DefaultBitrate: 100 kbit/s per frame per second).
	Bitrate media.BitrateModel
	// UseContext adjusts the satisfaction profile to the context
	// profile: audio-hostile contexts (meetings, loud surroundings)
	// stop scoring audio parameters; video-hostile contexts (driving)
	// stop scoring visual ones.
	UseContext bool
	// Cache, when set, memoizes built adaptation graphs keyed by the
	// profile set's contents: repeated compositions over an unchanged
	// deployment skip graph construction. Ignored when Prune is set
	// (pruning mutates the graph, so a pruned graph must stay private
	// to its composition).
	Cache *graph.Cache
}

// Composition is the outcome of a Compose call.
type Composition struct {
	// Result is the selected chain with satisfaction, parameters, cost
	// and (when requested) the round-by-round trace.
	Result *core.Result
	// Graph is the adaptation graph the chain was selected from.
	Graph *graph.Graph
	// Config is the selection configuration derived from the profiles.
	Config core.Config
}

// Compose builds the adaptation graph from a full profile set and runs
// the QoS selection algorithm. It derives the optimization objective from
// the user profile (satisfaction functions and budget) and the receiver
// caps from the device hardware.
func Compose(set *profile.Set, opts Options) (*Composition, error) {
	return ComposeCtx(context.Background(), set, opts)
}

// ComposeCtx is Compose under a context: the selection loop observes
// the context's deadline/cancellation (core.SelectCtx) so a request
// whose budget ran out stops consuming planner time. Serving layers
// pass their per-request context here.
func ComposeCtx(ctx context.Context, set *profile.Set, opts Options) (*Composition, error) {
	if set == nil {
		return nil, fmt.Errorf("qoschain: nil profile set")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	satProfile, err := set.User.SatisfactionProfile(opts.Contact)
	if err != nil {
		return nil, err
	}
	if err := satProfile.Validate(); err != nil {
		return nil, err
	}
	if opts.UseContext {
		satProfile = profile.ApplyContext(satProfile, &set.Context)
	}
	g, err := buildGraph(ctx, set, opts)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Profile:      satProfile,
		Bitrate:      opts.Bitrate,
		Budget:       set.User.Budget,
		ReceiverCaps: set.Device.RenderCaps(),
		Trace:        opts.Trace,
	}
	res, err := core.SelectCtx(ctx, g, cfg)
	if err != nil {
		return &Composition{Result: res, Graph: g, Config: cfg}, err
	}
	return &Composition{Result: res, Graph: g, Config: cfg}, nil
}

// BatchComposition is one receiver's outcome of a ComposeBatch call.
type BatchComposition struct {
	// Result is the selected chain; nil when Err is a profile error.
	Result *core.Result
	// Config is the selection configuration derived for this receiver.
	Config core.Config
	// Err reports a per-receiver failure (invalid user profile, or
	// core.ErrNoChain); other receivers are unaffected.
	Err error
}

// ComposeBatch plans one adaptation chain per user profile against a
// single shared adaptation graph: the graph is built (or fetched from
// opts.Cache) once, then the selections fan out over a
// runtime.GOMAXPROCS-bounded worker pool (core.SelectBatch). All users
// share the set's content, device, context and network; each brings its
// own satisfaction functions and budget. An empty users slice plans just
// the set's own user. Results are in input order; the shared graph is
// returned for inspection.
func ComposeBatch(set *profile.Set, users []profile.User, opts Options) ([]BatchComposition, *graph.Graph, error) {
	return ComposeBatchCtx(context.Background(), set, users, opts)
}

// ComposeBatchCtx is ComposeBatch under a context: users not yet
// planned when the deadline passes are marked aborted, and in-flight
// selections stop at their next round check (core.SelectBatchCtx).
func ComposeBatchCtx(ctx context.Context, set *profile.Set, users []profile.User, opts Options) ([]BatchComposition, *graph.Graph, error) {
	if set == nil {
		return nil, nil, fmt.Errorf("qoschain: nil profile set")
	}
	if err := set.Validate(); err != nil {
		return nil, nil, err
	}
	if len(users) == 0 {
		users = []profile.User{set.User}
	}

	g, err := buildGraph(ctx, set, opts)
	if err != nil {
		return nil, nil, err
	}

	out := make([]BatchComposition, len(users))
	idx := make([]int, 0, len(users)) // positions with a valid config
	cfgs := make([]core.Config, 0, len(users))
	receiverCaps := set.Device.RenderCaps()
	for i := range users {
		satProfile, err := users[i].SatisfactionProfile(opts.Contact)
		if err == nil {
			err = satProfile.Validate()
		}
		if err != nil {
			out[i].Err = err
			continue
		}
		if opts.UseContext {
			satProfile = profile.ApplyContext(satProfile, &set.Context)
		}
		cfg := core.Config{
			Profile:      satProfile,
			Bitrate:      opts.Bitrate,
			Budget:       users[i].Budget,
			ReceiverCaps: receiverCaps,
			Trace:        opts.Trace,
		}
		out[i].Config = cfg
		idx = append(idx, i)
		cfgs = append(cfgs, cfg)
	}

	for j, br := range core.SelectBatchCtx(ctx, g, cfgs) {
		out[idx[j]].Result = br.Result
		out[idx[j]].Err = br.Err
	}
	return out, g, nil
}

// Stream instantiates the composed chain as a concurrent trans-coding
// pipeline and pushes n synthetic source frames through it, returning the
// delivery statistics.
func (c *Composition) Stream(n int) (pipeline.Stats, error) {
	p, err := pipeline.FromResult(c.Graph, c.Result, pipeline.Options{Bitrate: c.Config.Bitrate})
	if err != nil {
		return pipeline.Stats{}, err
	}
	return p.Run(n), nil
}

// Explain returns the per-parameter satisfactions of the delivered
// stream, for user-facing reporting.
func (c *Composition) Explain() map[string]float64 {
	each := c.Config.Profile.EvaluateEach(c.Result.Params)
	out := make(map[string]float64, len(each))
	for k, v := range each {
		out[string(k)] = v
	}
	return out
}

// Satisfaction is a convenience re-export: the combined satisfaction
// function of Equation 1 over individual parameter satisfactions.
func Satisfaction(individual []float64) float64 {
	return satisfaction.Combine(individual)
}
