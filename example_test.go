package qoschain_test

import (
	"fmt"

	"qoschain"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// ExampleCompose walks the full happy path: six profiles in, a selected
// trans-coding chain out.
func ExampleCompose() {
	set := &profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content: profile.Content{
			ID: "clip",
			Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			},
		},
		Device: profile.Device{
			ID:       "phone",
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
		},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "proxy", BandwidthKbps: 2400},
			{From: "proxy", To: "phone", BandwidthKbps: 1800},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "proxy", CPUMips: 2000, MemoryMB: 256,
			Services: []*service.Service{
				service.FormatConverter("conv", media.VideoMPEG1, media.VideoH263),
			},
		}},
	}
	comp, err := qoschain.Compose(set, qoschain.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(comp.Result.Summary())
	// Output:
	// path=sender,conv,receiver satisfaction=0.60 params={framerate=18} cost=1.00
}

// ExampleSatisfaction shows the Equation 1 combination: the geometric
// mean of per-parameter satisfactions.
func ExampleSatisfaction() {
	fmt.Printf("%.2f\n", qoschain.Satisfaction([]float64{0.25, 1.0}))
	fmt.Printf("%.2f\n", qoschain.Satisfaction([]float64{0.0, 1.0}))
	// Output:
	// 0.50
	// 0.00
}
