// Instrumentation-overhead guard: BenchmarkSelect runs the same
// mid-size selection plain and with a live trace in the context, and
// TestTracingOverheadGuard (opt-in via TRACE_OVERHEAD_GUARD=1, wired
// into CI) fails if the traced path is more than 5% slower. The span
// machinery is allocation-light by design; this pins that property.
package qoschain

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/paperexample"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
	"qoschain/internal/trace"
	"qoschain/internal/workload"
)

// BenchmarkSelect compares the selection hot path with and without
// request tracing. "plain" is the untouched core.Select; "traced" runs
// core.SelectCtx with a live Trace in the context, which opens the
// core.select and per-round select.round spans.
func BenchmarkSelect(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(11)), workload.Spec{Services: 200})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tracer := trace.NewTracer(4)
		for i := 0; i < b.N; i++ {
			tr := tracer.Start("bench.select")
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := core.SelectCtx(ctx, sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}

// TestTracingOverheadGuard measures both BenchmarkSelect variants and
// fails if tracing costs more than 5% wall time. It is opt-in
// (TRACE_OVERHEAD_GUARD=1) because micro-benchmark timing is too noisy
// for the default -race matrix; CI runs it in a dedicated step.
func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GUARD") == "" {
		t.Skip("set TRACE_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	sc := workload.Generate(rand.New(rand.NewSource(11)), workload.Spec{Services: 200})
	plainBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	}
	tracedBench := func(b *testing.B) {
		tracer := trace.NewTracer(4)
		for i := 0; i < b.N; i++ {
			tr := tracer.Start("bench.select")
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := core.SelectCtx(ctx, sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	}
	// Interleave several runs of each variant and compare the per-variant
	// minimums: the min ns/op is the least scheduler-disturbed measurement
	// of each, so the comparison reflects the instrumentation rather than
	// which variant drew the noisier time slice.
	const runs = 5
	var p, tr int64
	for i := 0; i < runs; i++ {
		if ns := testing.Benchmark(plainBench).NsPerOp(); p == 0 || ns < p {
			p = ns
		}
		if ns := testing.Benchmark(tracedBench).NsPerOp(); tr == 0 || ns < tr {
			tr = ns
		}
	}
	overhead := float64(tr-p) / float64(p) * 100
	msg := fmt.Sprintf("plain %d ns/op, traced %d ns/op, overhead %.2f%%", p, tr, overhead)
	if overhead > 5 {
		t.Fatalf("tracing overhead above 5%% budget: %s", msg)
	}
	t.Log(msg)
}

// sloBenchSet mirrors the simulator's Figure 6 deployment (Table 1
// network, services, content and device) without importing internal/sim
// — sim pulls in the cluster stack, which imports this package's HTTP
// layer, so the set is rebuilt here from paperexample directly.
func sloBenchSet() profile.Set {
	net := paperexample.Table1Network().Snapshot()
	sort.Slice(net.Links, func(i, j int) bool {
		if net.Links[i].From != net.Links[j].From {
			return net.Links[i].From < net.Links[j].From
		}
		return net.Links[i].To < net.Links[j].To
	})
	byHost := map[string][]*service.Service{}
	hosts := []string{}
	for _, svc := range paperexample.Table1Services(true) {
		if len(byHost[svc.Host]) == 0 {
			hosts = append(hosts, svc.Host)
		}
		byHost[svc.Host] = append(byHost[svc.Host], svc)
	}
	sort.Strings(hosts)
	var inter []profile.Intermediary
	for _, h := range hosts {
		inter = append(inter, profile.Intermediary{
			Host: h, CPUMips: 1000, MemoryMB: 256, Services: byHost[h],
		})
	}
	return profile.Set{
		User: profile.User{
			Name: "slo-bench-user",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content:        *paperexample.Table1Content(),
		Device:         *paperexample.Table1Device(),
		Network:        net,
		Intermediaries: inter,
	}
}

// TestSLOOverheadGuard is the session-hot-path companion to
// TestTracingOverheadGuard: it drives repeated re-evaluations of a
// Figure 6 session through an in-memory manager, once with a nil
// counter sink and once with the full SLO tracking pipeline (counters
// mirrored onto a well-known-registered registry, which arms the
// qos.below_floor_seconds / qos.floor_breaches / satisfaction-histogram
// bookkeeping on every re-evaluation), and fails if SLO tracking costs
// more than 5% wall time. Opt-in via TRACE_OVERHEAD_GUARD=1 like its
// sibling; CI runs both in the trace-overhead step.
func TestSLOOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GUARD") == "" {
		t.Skip("set TRACE_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	set := sloBenchSet()
	newBench := func(counters *metrics.Counters) func(b *testing.B) {
		return func(b *testing.B) {
			m, err := session.NewManager(session.ManagerConfig{Counters: counters})
			if err != nil {
				b.Fatal(err)
			}
			ms, err := m.Create(session.CreateSpec{Set: set, Floor: 0.3, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, logErr := ms.ReevaluateReason(session.ReevalManual); logErr != nil {
					b.Fatal(logErr)
				}
			}
		}
	}
	plainBench := newBench(nil)
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	trackedBench := newBench(metrics.CountersOn(reg))
	// Same protocol as the tracing guard: interleave and compare the
	// per-variant minimums so scheduler noise cancels out.
	const runs = 5
	var p, tr int64
	for i := 0; i < runs; i++ {
		if ns := testing.Benchmark(plainBench).NsPerOp(); p == 0 || ns < p {
			p = ns
		}
		if ns := testing.Benchmark(trackedBench).NsPerOp(); tr == 0 || ns < tr {
			tr = ns
		}
	}
	overhead := float64(tr-p) / float64(p) * 100
	msg := fmt.Sprintf("plain %d ns/op, slo-tracked %d ns/op, overhead %.2f%%", p, tr, overhead)
	if overhead > 5 {
		t.Fatalf("SLO tracking overhead above 5%% budget: %s", msg)
	}
	t.Log(msg)
}
