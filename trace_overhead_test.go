// Instrumentation-overhead guard: BenchmarkSelect runs the same
// mid-size selection plain and with a live trace in the context, and
// TestTracingOverheadGuard (opt-in via TRACE_OVERHEAD_GUARD=1, wired
// into CI) fails if the traced path is more than 5% slower. The span
// machinery is allocation-light by design; this pins that property.
package qoschain

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/trace"
	"qoschain/internal/workload"
)

// BenchmarkSelect compares the selection hot path with and without
// request tracing. "plain" is the untouched core.Select; "traced" runs
// core.SelectCtx with a live Trace in the context, which opens the
// core.select and per-round select.round spans.
func BenchmarkSelect(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(11)), workload.Spec{Services: 200})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tracer := trace.NewTracer(4)
		for i := 0; i < b.N; i++ {
			tr := tracer.Start("bench.select")
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := core.SelectCtx(ctx, sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}

// TestTracingOverheadGuard measures both BenchmarkSelect variants and
// fails if tracing costs more than 5% wall time. It is opt-in
// (TRACE_OVERHEAD_GUARD=1) because micro-benchmark timing is too noisy
// for the default -race matrix; CI runs it in a dedicated step.
func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GUARD") == "" {
		t.Skip("set TRACE_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	sc := workload.Generate(rand.New(rand.NewSource(11)), workload.Spec{Services: 200})
	plainBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	}
	tracedBench := func(b *testing.B) {
		tracer := trace.NewTracer(4)
		for i := 0; i < b.N; i++ {
			tr := tracer.Start("bench.select")
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := core.SelectCtx(ctx, sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	}
	// Interleave several runs of each variant and compare the per-variant
	// minimums: the min ns/op is the least scheduler-disturbed measurement
	// of each, so the comparison reflects the instrumentation rather than
	// which variant drew the noisier time slice.
	const runs = 5
	var p, tr int64
	for i := 0; i < runs; i++ {
		if ns := testing.Benchmark(plainBench).NsPerOp(); p == 0 || ns < p {
			p = ns
		}
		if ns := testing.Benchmark(tracedBench).NsPerOp(); tr == 0 || ns < tr {
			tr = ns
		}
	}
	overhead := float64(tr-p) / float64(p) * 100
	msg := fmt.Sprintf("plain %d ns/op, traced %d ns/op, overhead %.2f%%", p, tr, overhead)
	if overhead > 5 {
		t.Fatalf("tracing overhead above 5%% budget: %s", msg)
	}
	t.Log(msg)
}
