module qoschain

go 1.22
